"""Figure 5 ablation ladder.

Maps the paper's legend labels to :class:`STZConfig` instances so the
rate-distortion ablation benchmark and the tests iterate the exact
sequence of §3.1's five prediction optimizations plus the 3-level
design.  ``SZ3`` itself (the gray reference curve) is run through
:mod:`repro.sz3` directly by the benchmark.
"""

from __future__ import annotations

from repro.core.config import ABLATION_CONFIGS, STZConfig

#: paper legend label per variant key, in Figure 5 order
VARIANT_LABELS: dict[str, str] = {
    "partition": "Partition",
    "direct_pred": "Direct pred",
    "multidim_interp": "Multi-dim Interp",
    "multidim_qt": "Multi-dim + Qt",
    "cubic_multi_qt": "Cubic-Multi + Qt",
    "cubic_multi_qt_adp": "Cubic-Multi-Qt + Adp",
    "three_level_all": "3-level + All",
}


def variant_names() -> list[str]:
    """Ablation keys in ladder order."""
    return list(VARIANT_LABELS)


def get_config(name: str) -> STZConfig:
    try:
        return ABLATION_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown ablation variant {name!r}; choose from "
            f"{sorted(ABLATION_CONFIGS)}"
        ) from None
