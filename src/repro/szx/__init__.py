"""SZx-style ultra-fast block codec (the selection engine's fast tier)."""

from repro.szx.codec import SZXCompressor, szx_compress, szx_decompress

__all__ = ["SZXCompressor", "szx_compress", "szx_decompress"]
