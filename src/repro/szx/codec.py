"""SZx-style ultra-fast error-bounded codec.

SZx (Yu et al., see PAPERS.md) observes that a large share of the
blocks in real simulation fields are *constant within the error bound*,
and that classifying blocks first lets the common case be stored as a
single value while everything else gets the cheapest possible
fixed-rate treatment.  This module reproduces that design as a few
whole-array numpy passes — no per-element Python — which makes it the
ultra-fast tier of the codec-selection engine
(:mod:`repro.core.select`): lower latency than every other backend
here, excellent ratios on constant/smooth regions, mediocre ratios on
rough data (exactly the trade the selector arbitrates).

Per block of :data:`BLOCK` consecutive values (the array is flattened;
the codec is dimension-agnostic):

* **constant** — every value within ``eb`` of the block midpoint: store
  the midpoint only (one value per block).
* **quantized** — values encoded as non-negative multiples of ``2*eb``
  above the block minimum, bit-packed at the block's exact bit width;
  blocks with equal widths are packed together plane-major so each
  width group is one vectorized :func:`numpy.packbits` call (the same
  grouping trick as the ZFP-like codec).
* **raw** — exact payload bytes.  Chosen when the block contains
  non-finite values (NaN/inf must round-trip bit-exactly), when the
  required width exceeds :data:`_MAX_WIDTH`, or when the encoder's
  bit-exact reconstruction check finds a bound violation (dtype
  rounding at the bound edge).  The fallback is what makes the bound
  *hard* rather than statistical.

The bound is verified at encode time against the decoder's exact
arithmetic (same f64 expression, same dtype cast), so every container
this codec emits satisfies ``max|x - x_hat| <= eb`` point-wise with
non-finite values preserved bit-exactly.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.util import jit
from repro.util.sections import pack_sections, unpack_sections
from repro.util.validation import (
    as_float_array,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)

_MAGIC = b"SZXr"
_VERSION = 1
_HEADER = struct.Struct("<4sBBBBd")
# magic, version, dtype, ndim, pad, abs_eb

#: elements per block — small enough that one rough value cannot poison
#: a large neighbourhood, large enough that per-block metadata (mode
#: byte, min, width) amortizes
BLOCK = 256
#: quantized blocks wider than this fall back to raw storage (the codes
#: would cost as much as the payload dtype)
_MAX_WIDTH = 28

_MODE_CONST = 0
_MODE_QUANT = 1
_MODE_RAW = 2


def _blockify(data: np.ndarray) -> tuple[np.ndarray, int]:
    """Flatten and edge-pad to whole blocks; returns (blocks, n)."""
    flat = data.reshape(-1)
    n = flat.size
    pad = (-n) % BLOCK
    if pad:
        flat = np.concatenate([flat, np.repeat(flat[-1:], pad)])
    return flat.reshape(-1, BLOCK), n


def szx_compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    zlib_level: int = 1,
) -> bytes:
    """Compress with hard absolute/relative L-infinity bound ``eb``."""
    return _szx_compress_impl(data, eb, eb_mode, zlib_level, False)[0]


def szx_compress_with_recon(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    zlib_level: int = 1,
) -> tuple[bytes, np.ndarray]:
    """:func:`szx_compress` plus the decoder's exact reconstruction.

    Every tier's decode arithmetic is known at encode time (constant
    blocks broadcast the stored midpoint, raw blocks are exact, and
    quantized blocks were already bound-checked with the decoder's own
    f64-then-cast expression), so the reconstruction is assembled from
    the encoder's state in a few vectorized scatters — no second pass
    over the container.
    """
    blob, recon = _szx_compress_impl(data, eb, eb_mode, zlib_level, True)
    return blob, recon


def _szx_compress_impl(
    data: np.ndarray,
    eb: float,
    eb_mode: str,
    zlib_level: int,
    want_recon: bool,
) -> tuple[bytes, np.ndarray | None]:
    data = as_float_array(data)
    if data.ndim > 8:
        raise ValueError("SZx-like codec supports at most 8 dimensions")
    abs_eb = resolve_eb(data, eb, eb_mode)
    dtype = data.dtype

    blocks, n = _blockify(data)
    nblocks = blocks.shape[0]
    b64 = blocks.astype(np.float64)
    finite = np.isfinite(b64).all(axis=1)
    bmin = np.where(finite[:, None], b64, 0.0).min(axis=1)
    bmax = np.where(finite[:, None], b64, 0.0).max(axis=1)

    # constant blocks: midpoint, checked in the decoder's dtype
    mid = ((bmin + bmax) * 0.5).astype(dtype)
    mid64 = mid.astype(np.float64)
    const = finite & (bmax - mid64 <= abs_eb) & (mid64 - bmin <= abs_eb)

    # quantized blocks: exact-width codes above the block minimum
    span = bmax - bmin
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        maxcode = np.where(const | ~finite, 0.0, np.ceil(span / (2.0 * abs_eb)))
    # non-finite quotients (overflow at extreme span/eb ratios) must land
    # in the raw tier, not wrap around in the int cast below
    maxcode = np.where(np.isfinite(maxcode), maxcode, 2.0**63)
    width = np.zeros(nblocks, dtype=np.int64)
    nz = maxcode > 0
    width[nz] = np.minimum(
        np.floor(np.log2(np.maximum(maxcode[nz], 1.0))) + 1.0, 64.0
    ).astype(np.int64)
    quant = finite & ~const & (width <= _MAX_WIDTH)

    codes = np.zeros((nblocks, BLOCK), dtype=np.uint32)
    if quant.any():
        q = np.rint(
            (b64[quant] - bmin[quant, None]) / (2.0 * abs_eb)
        )
        codes[quant] = q.astype(np.uint32)
        # bit-exact decoder check: recon in f64, cast to the payload
        # dtype exactly as the decoder will; any block where dtype
        # rounding spills past the bound is demoted to raw
        recon = (
            bmin[quant, None] + codes[quant].astype(np.float64) * (2.0 * abs_eb)
        ).astype(dtype).astype(np.float64)
        bad = (np.abs(recon - b64[quant]) > abs_eb).any(axis=1)
        if bad.any():
            qidx = np.flatnonzero(quant)
            quant[qidx[bad]] = False

    modes = np.full(nblocks, _MODE_RAW, dtype=np.uint8)
    modes[const] = _MODE_CONST
    modes[quant] = _MODE_QUANT
    raw = modes == _MODE_RAW

    # recompute widths on the surviving quant blocks (exact bit length)
    qsel = np.flatnonzero(quant)
    qcodes = codes[qsel]
    qmax = qcodes.max(axis=1) if qsel.size else np.zeros(0, np.uint32)
    qwidth = np.zeros(qsel.size, dtype=np.uint8)
    wnz = qmax > 0
    qwidth[wnz] = (
        np.floor(np.log2(qmax[wnz].astype(np.float64))).astype(np.int64) + 1
    ).astype(np.uint8)

    packed_parts: list[bytes] = []
    for w in np.unique(qwidth):
        if w == 0:
            continue  # all-zero codes: nothing to store
        sel = np.flatnonzero(qwidth == w)
        grp = qcodes[sel]
        # compiled plane-major packer (repro.util.jit, DESIGN.md §10):
        # byte-identical to the packbits reference below
        packed = jit.szx_pack(grp, int(w))
        if packed is not None:
            packed_parts.append(packed.tobytes())
            continue
        planes = np.arange(int(w) - 1, -1, -1, dtype=np.uint32)
        bits = (
            (grp[None, :, :] >> planes[:, None, None]) & np.uint32(1)
        ).astype(np.uint8)
        packed_parts.append(np.packbits(bits.reshape(-1)).tobytes())

    header = _HEADER.pack(
        _MAGIC, _VERSION, dtype_code(dtype), data.ndim, 0, abs_eb
    ) + struct.pack(f"<{data.ndim}Q", *data.shape)
    lvl = max(zlib_level, 1)
    sections = [
        header,
        compress_bytes(modes.tobytes(), lvl),
        compress_bytes(mid[const].tobytes(), lvl),
        compress_bytes(bmin[quant].tobytes(), lvl),
        compress_bytes(qwidth.tobytes(), lvl),
        compress_bytes(b"".join(packed_parts), zlib_level, probe=True),
        compress_bytes(blocks[raw].tobytes(), zlib_level, probe=True),
    ]
    blob = pack_sections(sections)
    if not want_recon:
        return blob, None

    # assemble the decoder's exact output tier by tier: the same
    # expressions szx_decompress evaluates, on bit-identical operands
    # (every stored quantity round-trips exactly through the container)
    out = np.empty((nblocks, BLOCK), dtype=dtype)
    out[const] = mid[const][:, None]
    out[raw] = blocks[raw]
    out[quant] = (
        bmin[quant][:, None] + qcodes.astype(np.float64) * (2.0 * abs_eb)
    ).astype(dtype)
    return blob, np.ascontiguousarray(out.reshape(-1)[:n].reshape(data.shape))


def szx_decompress(blob: bytes | memoryview) -> np.ndarray:
    sections = unpack_sections(blob)
    header = bytes(sections[0])
    magic, version, dt, ndim, _pad, abs_eb = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise ValueError("not an SZx-like container")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    shape = struct.unpack(f"<{ndim}Q", header[_HEADER.size :])
    dtype = dtype_from_code(dt)
    n = 1
    for s in shape:
        n *= int(s)
    nblocks = -(-n // BLOCK)

    modes = np.frombuffer(decompress_bytes(sections[1]), dtype=np.uint8)
    const_vals = np.frombuffer(decompress_bytes(sections[2]), dtype=dtype)
    bmins = np.frombuffer(decompress_bytes(sections[3]), dtype=np.float64)
    qwidth = np.frombuffer(decompress_bytes(sections[4]), dtype=np.uint8)
    packed = decompress_bytes(sections[5])
    rawbuf = decompress_bytes(sections[6])
    if modes.size != nblocks:
        raise ValueError("corrupt SZx container: mode table size mismatch")

    out = np.empty((nblocks, BLOCK), dtype=dtype)
    const = modes == _MODE_CONST
    quant = modes == _MODE_QUANT
    raw = modes == _MODE_RAW
    out[const] = const_vals[:, None]
    out[raw] = np.frombuffer(rawbuf, dtype=dtype).reshape(-1, BLOCK)

    qsel = np.flatnonzero(quant)
    qcodes = np.zeros((qsel.size, BLOCK), dtype=np.uint32)
    off = 0
    for w in np.unique(qwidth):
        if w == 0:
            continue
        sel = np.flatnonzero(qwidth == w)
        nbits = int(w) * sel.size * BLOCK
        nbytes = (nbits + 7) // 8
        buf = np.frombuffer(packed, dtype=np.uint8, count=nbytes, offset=off)
        off += nbytes
        grp = jit.szx_unpack(buf, sel.size * BLOCK, int(w))
        if grp is not None:
            qcodes[sel] = grp.reshape(sel.size, BLOCK)
            continue
        bits = np.unpackbits(buf, count=nbits).reshape(int(w), sel.size, BLOCK)
        planes = np.arange(int(w) - 1, -1, -1, dtype=np.uint32)
        qcodes[sel] = (
            (bits.astype(np.uint32) << planes[:, None, None])
        ).sum(axis=0, dtype=np.uint32)
    out[quant] = (
        bmins[:, None] + qcodes.astype(np.float64) * (2.0 * abs_eb)
    ).astype(dtype)

    return np.ascontiguousarray(out.reshape(-1)[:n].reshape(shape))


class SZXCompressor:
    """Object API with Table 1 capability flags."""

    name = "SZx"
    supports_progressive = False
    supports_random_access = False

    def __init__(self, eb: float, eb_mode: str = "abs"):
        self.eb = eb
        self.eb_mode = eb_mode

    def compress(self, data: np.ndarray) -> bytes:
        return szx_compress(data, self.eb, self.eb_mode)

    def decompress(self, blob: bytes) -> np.ndarray:
        return szx_decompress(blob)
