"""WarpX-like laser-wakefield field.

WarpX (2022 Gordon Bell winner) simulates laser-plasma acceleration on
strongly anisotropic grids (the paper uses a 256 x 256 x 2048 FP64
field).  The dominant structure is a modulated laser pulse: a carrier
wave under a localized envelope travelling along the long axis, with a
weak broadband plasma background.  Compressors see exactly the features
that matter: a smooth background (easy), an oscillatory packet
(mid-frequency), FP64 precision, and anisotropy.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import gaussian_random_field


def warpx_field(
    shape: tuple[int, ...] = (32, 32, 256),
    seed: int = 0,
    wavelength: float = 24.0,
    noise: float = 0.02,
) -> np.ndarray:
    """Longitudinal electric field of a laser pulse, dtype float64.

    The long axis is the last one (propagation direction); the packet
    sits at 40% of the domain with a Gaussian envelope, and carrier
    ``wavelength`` is in grid cells.
    """
    if len(shape) != 3:
        raise ValueError("warpx_field generates 3D data")
    nx, ny, nz = shape
    x = np.linspace(-1, 1, nx)[:, None, None]
    y = np.linspace(-1, 1, ny)[None, :, None]
    z = np.arange(nz)[None, None, :]

    z0 = 0.4 * nz
    env_len = 0.12 * nz
    envelope = np.exp(
        -((z - z0) ** 2) / (2 * env_len**2) - (x**2 + y**2) / 0.18
    )
    carrier = np.sin(2 * np.pi * z / wavelength)
    pulse = envelope * carrier

    wake = 0.15 * np.exp(-(x**2 + y**2) / 0.5) * np.sin(
        2 * np.pi * (z - z0) / (4.0 * wavelength)
    ) * (z > z0)

    background = noise * gaussian_random_field(
        shape, gamma=2.5, seed=seed, cutoff=0.5
    )
    return (pulse + wake + background).astype(np.float64)
