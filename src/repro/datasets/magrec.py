"""Magnetic-reconnection-like plasma field.

Guo et al. (2014) simulate relativistic magnetic reconnection: Harris
current sheets that tear into magnetic islands (plasmoids), producing
*widespread high-frequency structure* across the domain.  That spectral
character is why SPERR's global wavelet wins on this dataset in the
paper (§4.2) — our generator reproduces it with two perturbed current
sheets, a plasmoid chain, and a broadband turbulent component.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import gaussian_random_field


def magnetic_reconnection(
    shape: tuple[int, ...] = (64, 64, 64),
    seed: int = 0,
    sheet_width: float = 0.04,
    islands: int = 5,
    turbulence: float = 0.25,
) -> np.ndarray:
    """Out-of-plane current density with tearing islands, float32."""
    if len(shape) != 3:
        raise ValueError("magnetic_reconnection generates 3D data")
    nx, ny, nz = shape
    x = np.linspace(0, 1, nx)[:, None, None]
    y = np.linspace(-0.5, 0.5, ny)[None, :, None]
    z = np.linspace(0, 1, nz)[None, None, :]

    j = np.zeros(shape)
    for yc, sign in ((-0.25, 1.0), (0.25, -1.0)):
        ripple = 0.02 * np.sin(2 * np.pi * islands * x) * np.cos(
            2 * np.pi * 2 * z
        )
        sheet = 1.0 / np.cosh((y - yc - ripple) / sheet_width) ** 2
        modulation = 1.0 + 0.6 * np.cos(
            2 * np.pi * islands * x + 1.3 * sign
        ) * np.cos(2 * np.pi * 3 * z)
        j += sign * sheet * modulation

    j += turbulence * gaussian_random_field(shape, gamma=1.6, seed=seed)
    return j.astype(np.float32)
