"""Spectral synthesis of Gaussian random fields.

The building block of every synthetic dataset: white noise shaped in
Fourier space by a power-law spectrum ``P(k) ~ k**-gamma``.  Larger
``gamma`` concentrates power at large scales (smooth fields, easy to
compress); small ``gamma`` approaches white noise (hard to compress).
"""

from __future__ import annotations

import numpy as np


def smooth_field(
    shape: tuple[int, ...], seed: int = 0, noise: float = 0.02
) -> np.ndarray:
    """Band-limited smooth field + mild noise (float64).

    The shared fixture generator of the test and benchmark suites
    (both conftests re-export it), kept here so the two trees cannot
    drift apart.
    """
    rng = np.random.default_rng(seed)
    coords = np.meshgrid(
        *[np.linspace(0, 3, n) for n in shape], indexing="ij"
    )
    field = np.ones(shape)
    for i, c in enumerate(coords):
        field = field * np.sin((i + 2) * c / 2.0 + 0.3 * i)
    return field + noise * rng.standard_normal(shape)


def _kmag(shape: tuple[int, ...]) -> np.ndarray:
    """Radial wavenumber magnitude grid (cycles per domain)."""
    axes = [np.fft.fftfreq(n) * n for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k2 = np.zeros(shape)
    for g in grids:
        k2 += g * g
    return np.sqrt(k2)


def gaussian_random_field(
    shape: tuple[int, ...],
    gamma: float = 3.0,
    seed: int = 0,
    dtype=np.float64,
    cutoff: float | None = None,
) -> np.ndarray:
    """Zero-mean, unit-variance random field with ``P(k) ~ k**-gamma``.

    ``cutoff`` (relative to the Nyquist frequency) applies a Gaussian
    spectral roll-off ``exp(-(k/k_c)**2)`` — physical fields are smooth
    at the grid scale (e.g. pressure smoothing in cosmology), and grid-
    scale noise is exactly what an interpolating compressor cannot
    predict.
    """
    if any(n < 2 for n in shape):
        raise ValueError("every axis must have at least 2 points")
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spec = np.fft.fftn(white)
    k = _kmag(shape)
    amp = np.zeros_like(k)
    nz = k > 0
    amp[nz] = k[nz] ** (-gamma / 2.0)
    if cutoff is not None:
        k_c = cutoff * max(shape) / 2.0
        amp *= np.exp(-((k / k_c) ** 2))
    field = np.real(np.fft.ifftn(spec * amp))
    std = field.std()
    if std > 0:
        field = field / std
    return field.astype(dtype)


def smooth_noise(
    shape: tuple[int, ...],
    cutoff: float = 0.1,
    seed: int = 0,
    dtype=np.float64,
) -> np.ndarray:
    """Band-limited noise: white spectrum truncated above the relative
    cutoff frequency — useful for gentle perturbations."""
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spec = np.fft.fftn(white)
    k = _kmag(shape)
    kmax = max(shape) / 2.0
    spec[k > cutoff * kmax] = 0.0
    field = np.real(np.fft.ifftn(spec))
    std = field.std()
    if std > 0:
        field = field / std
    return field.astype(dtype)
