"""Synthetic stand-ins for the paper's four evaluation datasets.

The real datasets (Nyx 512^3, WarpX 256^2x2048 FP64, Magnetic
Reconnection 512^3, Miranda 1024^3 — Table 2) are multi-GB simulation
dumps that cannot be redistributed or downloaded offline.  Each
generator here synthesizes a field with the *statistical features the
compressors react to* — smoothness, spectra, anisotropy, localized
structures — so compressor rankings reproduce while absolute PSNR
values differ (substitution documented in DESIGN.md §3).

All generators are deterministic given a seed.
"""

from repro.datasets.magrec import magnetic_reconnection
from repro.datasets.miranda import miranda_density
from repro.datasets.nyx import nyx_baryon_density
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load,
    table2_rows,
)
from repro.datasets.synthetic import gaussian_random_field
from repro.datasets.warpx import warpx_field

__all__ = [
    "gaussian_random_field",
    "nyx_baryon_density",
    "warpx_field",
    "miranda_density",
    "magnetic_reconnection",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load",
    "table2_rows",
]
