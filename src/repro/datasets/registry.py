"""Dataset registry — the reproduction of the paper's Table 2.

Maps dataset names to generators, records the paper's original
dimensions alongside our bench-scale defaults, and exposes
:func:`load` (scaled, seeded) plus :func:`table2_rows` for the Table 2
benchmark.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.magrec import magnetic_reconnection
from repro.datasets.miranda import miranda_density
from repro.datasets.nyx import nyx_baryon_density
from repro.datasets.warpx import warpx_field


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 2 plus our synthesis configuration."""

    name: str
    generator: Callable[..., np.ndarray]
    dtype: str
    paper_dims: tuple[int, ...]
    paper_size: str
    bench_dims: tuple[int, ...]
    domain: str

    def generate(
        self, shape: tuple[int, ...] | None = None, seed: int = 0
    ) -> np.ndarray:
        return self.generator(shape=shape or self.bench_dims, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    "nyx": DatasetSpec(
        name="Nyx",
        generator=nyx_baryon_density,
        dtype="float32",
        paper_dims=(512, 512, 512),
        paper_size="512 MB",
        bench_dims=(64, 64, 64),
        domain="Cosmology",
    ),
    "warpx": DatasetSpec(
        name="WarpX",
        generator=warpx_field,
        dtype="float64",
        paper_dims=(256, 256, 2048),
        paper_size="1024 MB",
        bench_dims=(32, 32, 256),
        domain="Accelerator Physics",
    ),
    "magrec": DatasetSpec(
        name="Mag._Rec.",
        generator=magnetic_reconnection,
        dtype="float32",
        paper_dims=(512, 512, 512),
        paper_size="512 MB",
        bench_dims=(64, 64, 64),
        domain="Plasma Physics",
    ),
    "miranda": DatasetSpec(
        name="Miranda",
        generator=miranda_density,
        dtype="float32",
        paper_dims=(1024, 1024, 1024),
        paper_size="4096 MB",
        bench_dims=(64, 64, 64),
        domain="Turbulence",
    ),
}


def dataset_names() -> list[str]:
    return list(DATASETS)


def bench_scale() -> int:
    """Global integer scale factor for benchmark grids (env REPRO_SCALE).

    1 = defaults (64^3-class grids, seconds per run); 2 doubles every
    axis (8x the data) and so on, for users who want paper-scale runs.
    """
    return max(1, int(os.environ.get("REPRO_SCALE", "1")))


def load(
    name: str,
    shape: tuple[int, ...] | None = None,
    seed: int = 0,
    scale: int | None = None,
) -> np.ndarray:
    """Generate a dataset by registry key, optionally scaled."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    spec = DATASETS[key]
    if shape is None:
        s = scale if scale is not None else bench_scale()
        shape = tuple(n * s for n in spec.bench_dims)
    return spec.generate(shape=shape, seed=seed)


def table2_rows() -> list[dict[str, str]]:
    """The paper's Table 2, extended with our synthesis scale."""
    rows = []
    for key, spec in DATASETS.items():
        data = load(key)
        rows.append(
            {
                "dataset": spec.name,
                "type": spec.dtype,
                "paper_dims": "x".join(map(str, spec.paper_dims)),
                "paper_size": spec.paper_size,
                "our_dims": "x".join(map(str, data.shape)),
                "our_size_mb": f"{data.nbytes / 2**20:.1f} MB",
                "domain": spec.domain,
            }
        )
    return rows
