"""Nyx-like cosmology field ("baryon density").

The Nyx baryon density is a lognormal-looking field: smooth voids near
the cosmic mean punctuated by rare over-density halos orders of
magnitude above it (the paper thresholds at 81.66 to find halo seeds,
Figure 10).  We exponentiate a power-law Gaussian random field, which
reproduces exactly that morphology: strictly positive values, heavy
upper tail, strong spatial correlation.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import gaussian_random_field

#: over-density threshold used by the paper for halo detection
HALO_THRESHOLD = 81.66


def nyx_baryon_density(
    shape: tuple[int, ...] = (64, 64, 64),
    seed: int = 0,
    bias: float = 2.2,
    gamma: float = 3.0,
    cutoff: float = 0.35,
) -> np.ndarray:
    """Lognormal over-density field, mean ~1, dtype float32 (as Nyx).

    ``bias`` controls halo contrast (larger = heavier tail); defaults
    give a dynamic range of a few thousand with halos above
    :data:`HALO_THRESHOLD` covering well under 1% of the volume,
    matching the paper's Figure 10 setting.  The spectral ``cutoff``
    models baryon pressure smoothing (real Nyx density is smooth at the
    grid scale).
    """
    delta = gaussian_random_field(shape, gamma=gamma, seed=seed, cutoff=cutoff)
    rho = np.exp(bias * delta)
    rho /= rho.mean()
    return rho.astype(np.float32)
