"""Miranda-like hydrodynamics field (Rayleigh-Taylor mixing density).

Miranda simulates Rayleigh-Taylor instability: two fluids of different
density separated by a perturbed interface that develops fine mixing
structure (Cook et al. 2004).  The density field is mostly *very*
smooth (two nearly constant phases) with all complexity concentrated in
a thin interface band — which is why the paper reaches CR 447 on it at
visually lossless quality (Figure 13).  We model exactly that: a tanh
interface whose position is a smooth 2D random surface, plus mild
turbulence localized at the interface.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import gaussian_random_field, smooth_noise


def miranda_density(
    shape: tuple[int, ...] = (64, 64, 64),
    seed: int = 0,
    interface_amp: float = 0.12,
    interface_width: float = 0.035,
    turbulence: float = 0.05,
) -> np.ndarray:
    """Two-fluid density (1.0 vs 3.0) with a perturbed mixing
    interface, dtype float32 (as Miranda)."""
    if len(shape) != 3:
        raise ValueError("miranda_density generates 3D data")
    nx, ny, nz = shape
    zeta = interface_amp * smooth_noise((nx, ny), cutoff=0.12, seed=seed)
    z = np.linspace(-0.5, 0.5, nz)[None, None, :]
    dist = z - zeta[:, :, None]
    rho = 2.0 + np.tanh(dist / interface_width)

    # turbulent mixing confined to the interface band; viscous
    # dissipation keeps real turbulence smooth at the grid scale
    band = np.exp(-((dist / (3 * interface_width)) ** 2))
    turb = gaussian_random_field(shape, gamma=2.0, seed=seed + 1, cutoff=0.4)
    rho = rho + turbulence * band * turb
    return rho.astype(np.float32)
