"""Vectorized variable-length bit packing.

The Huffman encoder needs to concatenate ``n`` codewords of varying bit
length into one bitstream.  A per-symbol Python loop would dominate the
whole compressor, so we scatter all bits with numpy:

* ``np.repeat(starts, lengths)`` expands per-symbol start offsets to one
  entry per emitted bit,
* ``arange(total) - repeat(starts)`` recovers the bit index *within* each
  codeword,
* a single shift/mask extracts the bit values, and ``np.packbits`` packs.

Bit order is MSB-first within a byte (``np.packbits`` convention).
"""

from __future__ import annotations

import sys

import numpy as np


def pack_bits(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack variable-length codewords into a byte array.

    Parameters
    ----------
    codes:
        Unsigned integer codewords; only the low ``lengths[i]`` bits of
        ``codes[i]`` are emitted (MSB of the codeword first).
    lengths:
        Bit length of each codeword (0 is allowed and emits nothing).

    Returns
    -------
    (packed, nbits):
        ``packed`` is a uint8 array (padded with zero bits to a byte
        boundary) and ``nbits`` the exact number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have identical shapes")
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.uint8), 0

    ends = np.cumsum(lengths)
    starts = ends - lengths
    # one row per emitted bit
    sym = np.repeat(np.arange(codes.size, dtype=np.int64), lengths)
    bit_in_code = np.arange(total, dtype=np.int64) - starts[sym]
    shift = (lengths[sym] - 1 - bit_in_code).astype(np.uint64)
    bits = ((codes[sym] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits), total


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Fast path of :func:`pack_bits` for codewords of <= 16 bits.

    Codewords are packed back to back starting at bit 0; see
    :func:`pack_codes_at` for the scatter itself.
    """
    codes = np.asarray(codes, dtype=np.uint32)
    lengths64 = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths64.shape:
        raise ValueError("codes and lengths must have identical shapes")
    ends = np.cumsum(lengths64)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return np.zeros(0, dtype=np.uint8), 0
    nbytes = (total + 7) >> 3
    packed = pack_codes_at(
        codes, lengths64, ends - lengths64, nbytes, boundaries=()
    )
    return packed, total


def pack_codes_at(
    codes: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    nbytes: int,
    boundaries: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter <=16-bit codewords to explicit bit positions.

    ``starts[i]`` is the absolute bit offset of codeword ``i`` in the
    output; positions must be non-overlapping but need not be
    contiguous, which lets one scatter emit *several* concatenated
    byte-aligned streams at once (the batched encoder's fused pack).
    ``boundaries`` (optional) lists the codeword indices where a new
    bit-contiguous run begins — everywhere else codeword ``i+1`` must
    start exactly where ``i`` ends.  When given, the per-pair adjacency
    scan is skipped entirely; when omitted, adjacency is detected from
    ``starts``.

    Each codeword lands in a 32-bit container aligned to its 16-bit
    lane (16-bit code + 15-bit in-lane offset spans at most 31 bits, so
    two lanes).  Because no two codewords share a bit, each lane's sum
    is really a bitwise OR of disjoint contributions and never exceeds
    ``2**32 - 1`` — well inside float64's ``2**53`` exact-integer
    range — so accumulating the two lane planes with ``np.bincount``
    (one C-speed scatter per plane) is exact.  The accumulation dtype
    must hold ``2**32 - 1`` exactly; float32 (exact only to ``2**24``)
    would silently corrupt the stream.  Callers may pass
    ``lengths``/``starts`` as int32 (totals below 2**31 bits) to keep
    the index arithmetic in 4-byte lanes.
    """
    codes = np.asarray(codes, dtype=np.uint32)
    lengths = np.asarray(lengths)
    starts = np.asarray(starts)
    if lengths.size and int(lengths.max()) > 16:
        raise ValueError("pack_codes requires code lengths <= 16")
    if nbytes == 0:
        return np.zeros(0, dtype=np.uint8)

    # fuse adjacent codeword pairs: wherever codeword i+1 starts exactly
    # where codeword i ends (always, except across stream boundaries),
    # the pair forms one <=32-bit codeword — halving the number of
    # scatter operations, which dominate this function
    n = codes.size
    if n % 2:  # zero-length dummy: contributes no bits
        codes = np.concatenate([codes, np.zeros(1, np.uint32)])
        lengths = np.concatenate([lengths, np.zeros(1, lengths.dtype)])
        starts = np.concatenate([starts, np.zeros(1, starts.dtype)])
    c0, c1 = codes[0::2], codes[1::2]
    l0, l1 = lengths[0::2], lengths[1::2]
    s0 = starts[0::2]
    pair_len = l0 + l1
    pair_code = (c0.astype(np.uint64) << l1.astype(np.uint64)) | c1
    if boundaries is None:
        # pairs straddling a discontinuity (rare: stream boundaries)
        split = np.flatnonzero(starts[1::2] != s0 + l0)
    else:
        b = np.asarray(boundaries, dtype=np.int64)
        split = (b[b & 1 == 1] >> 1) if b.size else b
    if split.size:
        pair_code[split] = c0[split]
        pair_len[split] = l0[split]
        pair_code = np.concatenate([pair_code, c1[split]])
        pair_len = np.concatenate([pair_len, l1[split]])
        s_all = np.concatenate([s0, starts[2 * split + 1]])
    else:
        s_all = s0

    rem = s_all & 31
    lane_idx = s_all >> 5
    shift = (64 - pair_len - rem).astype(np.uint64)
    w = pair_code << shift
    nlanes = (nbytes + 3) >> 2
    out = np.bincount(
        lane_idx, weights=(w >> np.uint64(32)).astype(np.float64),
        minlength=nlanes + 1,
    )
    out += np.bincount(
        lane_idx + 1,
        weights=(w & np.uint64(0xFFFFFFFF)).astype(np.float64),
        minlength=nlanes + 1,
    )
    lanes = out[:nlanes].astype(np.uint32)
    if sys.byteorder == "little":
        lanes.byteswap(inplace=True)  # bitstream bytes are MSB-first
    return lanes.view(np.uint8)[:nbytes]


def unpack_bits(packed: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` down to the raw bit array."""
    packed = np.asarray(packed, dtype=np.uint8)
    bits = np.unpackbits(packed, count=nbits)
    return bits


def windows_at(
    packed: np.ndarray, positions: np.ndarray, width: int = 16
) -> np.ndarray:
    """Return the ``width``-bit big-endian window starting at each bit
    position.

    Used by the Huffman decoder: the window at a codeword boundary is
    looked up in a ``2**width`` table to resolve (symbol, length) in one
    gather.  ``packed`` must be padded with at least 3 spare bytes past
    the last meaningful bit (the encoder segment format guarantees this).
    """
    if width > 16:
        raise ValueError("window width above 16 bits is not supported")
    positions = np.asarray(positions, dtype=np.int64)
    byte = positions >> 3
    r = (positions & 7).astype(np.uint32)
    b = packed
    u = (
        (b[byte].astype(np.uint32) << np.uint32(16))
        | (b[byte + 1].astype(np.uint32) << np.uint32(8))
        | b[byte + 2].astype(np.uint32)
    )
    win = (u >> (np.uint32(8) - r)) & np.uint32(0xFFFF)
    if width < 16:
        win >>= np.uint32(16 - width)
    return win
