"""Vectorized variable-length bit packing.

The Huffman encoder needs to concatenate ``n`` codewords of varying bit
length into one bitstream.  A per-symbol Python loop would dominate the
whole compressor, so we scatter all bits with numpy:

* ``np.repeat(starts, lengths)`` expands per-symbol start offsets to one
  entry per emitted bit,
* ``arange(total) - repeat(starts)`` recovers the bit index *within* each
  codeword,
* a single shift/mask extracts the bit values, and ``np.packbits`` packs.

Bit order is MSB-first within a byte (``np.packbits`` convention).
"""

from __future__ import annotations

import numpy as np


def pack_bits(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack variable-length codewords into a byte array.

    Parameters
    ----------
    codes:
        Unsigned integer codewords; only the low ``lengths[i]`` bits of
        ``codes[i]`` are emitted (MSB of the codeword first).
    lengths:
        Bit length of each codeword (0 is allowed and emits nothing).

    Returns
    -------
    (packed, nbits):
        ``packed`` is a uint8 array (padded with zero bits to a byte
        boundary) and ``nbits`` the exact number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have identical shapes")
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.uint8), 0

    ends = np.cumsum(lengths)
    starts = ends - lengths
    # one row per emitted bit
    sym = np.repeat(np.arange(codes.size, dtype=np.int64), lengths)
    bit_in_code = np.arange(total, dtype=np.int64) - starts[sym]
    shift = (lengths[sym] - 1 - bit_in_code).astype(np.uint64)
    bits = ((codes[sym] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits), total


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Fast path of :func:`pack_bits` for codewords of <= 16 bits.

    Instead of expanding to one entry per bit, each codeword is placed in
    a 32-bit container aligned to its start byte (16-bit code + 7-bit
    in-byte offset spans at most 3 bytes).  Because no two codewords
    share a bit, the three container byte planes can be accumulated into
    the output with ``np.bincount`` — a single C-speed scatter per plane.
    """
    codes = np.asarray(codes, dtype=np.uint32)
    lengths64 = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths64.shape:
        raise ValueError("codes and lengths must have identical shapes")
    if lengths64.size and int(lengths64.max()) > 16:
        raise ValueError("pack_codes requires code lengths <= 16")
    ends = np.cumsum(lengths64)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return np.zeros(0, dtype=np.uint8), 0
    starts = ends - lengths64
    rem = (starts & 7).astype(np.uint32)
    byte_idx = starts >> 3
    shift = np.uint32(32) - lengths64.astype(np.uint32) - rem
    w = codes << shift
    nbytes = (total + 7) >> 3
    out = np.zeros(nbytes + 3, dtype=np.float64)
    for k in range(3):
        plane = ((w >> np.uint32(8 * (3 - k))) & np.uint32(0xFF)).astype(
            np.float64
        )
        out += np.bincount(byte_idx + k, weights=plane, minlength=nbytes + 3)
    return out[:nbytes].astype(np.uint8), total


def unpack_bits(packed: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` down to the raw bit array."""
    packed = np.asarray(packed, dtype=np.uint8)
    bits = np.unpackbits(packed, count=nbits)
    return bits


def windows_at(
    packed: np.ndarray, positions: np.ndarray, width: int = 16
) -> np.ndarray:
    """Return the ``width``-bit big-endian window starting at each bit
    position.

    Used by the Huffman decoder: the window at a codeword boundary is
    looked up in a ``2**width`` table to resolve (symbol, length) in one
    gather.  ``packed`` must be padded with at least 3 spare bytes past
    the last meaningful bit (the encoder segment format guarantees this).
    """
    if width > 16:
        raise ValueError("window width above 16 bits is not supported")
    positions = np.asarray(positions, dtype=np.int64)
    byte = positions >> 3
    r = (positions & 7).astype(np.uint32)
    b = packed
    u = (
        (b[byte].astype(np.uint32) << np.uint32(16))
        | (b[byte + 1].astype(np.uint32) << np.uint32(8))
        | b[byte + 2].astype(np.uint32)
    )
    win = (u >> (np.uint32(8) - r)) & np.uint32(0xFFFF)
    if width < 16:
        win >>= np.uint32(16 - width)
    return win
