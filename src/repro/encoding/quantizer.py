"""SZ-style error-bounded linear quantizer.

Prediction residuals are mapped to integer codes ``q = round(diff/2eb)``
so that reconstructing ``pred + 2*eb*q`` is within ``eb`` of the input.
Code 0 is reserved for *outliers*: points whose residual exceeds the code
radius, or whose reconstruction — recomputed here in exactly the
arithmetic the decompressor will use — violates the bound (possible for
float32 payloads near the bound edge).  Outliers are stored exactly, so
the error bound is a hard guarantee, not a probabilistic one.

The code radius defaults to 16384 which keeps the worst-case distinct
alphabet (2*radius+1 symbols) within the Huffman codec's 16-bit code
length limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_RADIUS = 16384


@dataclass
class QuantizedBatch:
    """Quantization result for one batch of predicted values.

    Attributes
    ----------
    codes:
        uint32 array, same length as the batch; 0 marks an outlier,
        otherwise ``codes - radius`` is the signed quantization bin.
    outlier_pos:
        int64 flat indices (into the batch) of outliers.
    outlier_val:
        exact values of the outliers, in the payload dtype.
    recon:
        the reconstruction the decompressor will produce (same dtype as
        the input batch) — callers feed this back as the basis for
        predicting finer levels so that compression and decompression
        see bit-identical predictor inputs.
    """

    codes: np.ndarray
    outlier_pos: np.ndarray
    outlier_val: np.ndarray
    recon: np.ndarray
    radius: int


def _reconstruct(
    pred: np.ndarray, q: np.ndarray, eb: float, dtype: np.dtype
) -> np.ndarray:
    """The one true reconstruction formula, shared by both directions."""
    return (pred.astype(np.float64) + q * (2.0 * eb)).astype(dtype)


def quantize(
    values: np.ndarray,
    pred: np.ndarray,
    eb: float,
    radius: int = DEFAULT_RADIUS,
) -> QuantizedBatch:
    """Quantize ``values - pred`` with absolute error bound ``eb``."""
    if eb <= 0:
        raise ValueError(f"error bound must be > 0, got {eb}")
    values = np.asarray(values)
    pred = np.asarray(pred)
    if values.shape != pred.shape:
        raise ValueError("values and pred shapes differ")
    dtype = values.dtype
    flat = values.reshape(-1)
    pflat = pred.reshape(-1)

    diff = flat.astype(np.float64) - pflat.astype(np.float64)
    finite_diff = np.where(np.isfinite(diff), diff, 0.0)
    q = np.rint(finite_diff / (2.0 * eb)).astype(np.int64)
    recon = _reconstruct(pflat, q, eb, dtype)
    ok = (np.abs(q) < radius) & (
        np.abs(recon.astype(np.float64) - flat.astype(np.float64)) <= eb
    )
    # non-finite inputs are always stored exactly
    finite = np.isfinite(flat)
    ok &= finite

    codes = np.where(ok, q + radius, 0).astype(np.uint32)
    bad = np.flatnonzero(~ok)
    outlier_val = flat[bad].copy()
    recon[bad] = flat[bad]
    return QuantizedBatch(
        codes=codes,
        outlier_pos=bad.astype(np.int64),
        outlier_val=outlier_val,
        recon=recon,
        radius=radius,
    )


def dequantize(
    codes: np.ndarray,
    pred: np.ndarray,
    eb: float,
    outlier_pos: np.ndarray,
    outlier_val: np.ndarray,
    radius: int = DEFAULT_RADIUS,
) -> np.ndarray:
    """Invert :func:`quantize`; returns the reconstruction, flat."""
    pflat = np.asarray(pred).reshape(-1)
    q = codes.astype(np.int64) - radius
    recon = _reconstruct(pflat, q, eb, np.asarray(pred).dtype)
    if outlier_pos.size:
        recon[outlier_pos] = outlier_val
    return recon
