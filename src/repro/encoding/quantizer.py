"""SZ-style error-bounded linear quantizer.

Prediction residuals are mapped to integer codes ``q = round(diff/2eb)``
so that reconstructing ``pred + 2*eb*q`` is within ``eb`` of the input.
Code 0 is reserved for *outliers*: points whose residual exceeds the code
radius, or whose reconstruction — recomputed here in exactly the
arithmetic the decompressor will use — violates the bound (possible for
float32 payloads near the bound edge).  Outliers are stored exactly, so
the error bound is a hard guarantee, not a probabilistic one.

The code radius defaults to 16384 which keeps the worst-case distinct
alphabet (2*radius+1 symbols) within the Huffman codec's 16-bit code
length limit.

Float32 payloads can run the bin search and reconstruction in float32
when the caller opts in (``f32=True``) and the bound analysis allows
(:func:`_f32_mode`), with borderline bound checks re-verified in exact
float64 arithmetic.  The opt-in changes the reconstruction arithmetic,
so an encoder that enables it must record the fact in its container
(the STZ header's f32-quant flag bit) and the decoder must feed the
recorded flag back to :func:`dequantize` — the formula is never
guessed from the payload alone, which is what keeps archives written
by older encoders decoding bit-exactly.  :func:`quantize_many` fuses
all sub-blocks of an STZ level into one vectorized pass,
bit-compatible with the per-batch path — see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import jit

DEFAULT_RADIUS = 16384


@dataclass
class QuantizedBatch:
    """Quantization result for one batch of predicted values.

    Attributes
    ----------
    codes:
        uint32 array, same length as the batch; 0 marks an outlier,
        otherwise ``codes - radius`` is the signed quantization bin.
    outlier_pos:
        int64 flat indices (into the batch) of outliers.
    outlier_val:
        exact values of the outliers, in the payload dtype.
    recon:
        the reconstruction the decompressor will produce (same dtype as
        the input batch) — callers feed this back as the basis for
        predicting finer levels so that compression and decompression
        see bit-identical predictor inputs.
    """

    codes: np.ndarray
    outlier_pos: np.ndarray
    outlier_val: np.ndarray
    recon: np.ndarray
    radius: int


def _reconstruct(
    pred: np.ndarray, q: np.ndarray, eb: float, dtype: np.dtype
) -> np.ndarray:
    """The float64 reconstruction formula, shared by both directions."""
    return (pred.astype(np.float64) + q * (2.0 * eb)).astype(dtype)


def _f32_mode(dtype: np.dtype, pred_dtype: np.dtype, eb: float, radius: int) -> bool:
    """Bound analysis for the float32 fast path (DESIGN.md §2).

    Float32 payloads may run the whole quantize/dequantize arithmetic
    in float32 when the scale ``2*eb`` is a normal float32 (no
    underflow/overflow in the quotient's representable range) and every
    *code* — up to ``2*radius`` — is exactly representable
    (``radius <= 2**23``).  This analysis alone does not select the
    formula: the fast path additionally requires the caller's explicit
    ``f32`` opt-in, recorded in the container by the encoder and read
    back by the decoder, so both sides provably use the same
    arithmetic (containers from pre-f32 encoders decode with the
    float64 formula they were written with).  Given agreement on the
    flag, the rest of the decision is a pure function of
    ``(dtype, eb, radius)`` — all container-stored — and borderline
    bound checks are re-verified in float64 (see
    :func:`_quantize_flat`), so float32 rounding can only ever *add*
    outliers, never accept a bound violation.
    """
    f32 = np.finfo(np.float32)
    return (
        dtype == np.float32
        and pred_dtype == np.float32
        and float(f32.tiny) < 2.0 * eb < float(f32.max)
        and radius <= (1 << 23)
    )


def _quantize_flat(
    flat: np.ndarray, pflat: np.ndarray, eb: float, radius: int, f32: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared vectorized core of :func:`quantize`/:func:`quantize_many`.

    Returns ``(codes, outlier_pos, outlier_val, recon)`` over flat
    inputs.  Element-wise throughout, so quantizing a concatenation of
    batches is bit-identical to quantizing each batch separately.
    Non-finite inputs legitimately produce NaN/inf intermediates (they
    are routed to exact outlier storage), so invalid-op warnings are
    suppressed for the whole core.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        return _quantize_flat_impl(flat, pflat, eb, radius, f32)


def _quantize_flat_impl(
    flat: np.ndarray, pflat: np.ndarray, eb: float, radius: int, f32: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    f32_mode = f32 and _f32_mode(flat.dtype, pflat.dtype, eb, radius)
    # compiled single-pass kernel (repro.util.jit, DESIGN.md §10):
    # byte-identical to the vectorized reference below, engaged only
    # when available and the inputs are eligible
    compiled = jit.quantize(flat, pflat, eb, radius, f32_mode)
    if compiled is not None:
        return compiled
    if f32_mode:
        # float32 residuals, bin search and reconstruction: a third of
        # the temporary traffic of the float64 up-convert path.  NaN/inf
        # residuals propagate into the comparisons, which come out False
        # and route those points to exact outlier storage.
        two_eb = np.float32(2.0 * eb)
        qf = flat - pflat
        np.divide(qf, two_eb, out=qf)
        np.rint(qf, out=qf)
        # zero the out-of-radius / non-finite bins so codes stay bounded
        # (the bound check below rejects those points on its own: with
        # q = 0 their error is the full residual, far above eb)
        q = np.where(np.abs(qf) < np.float32(radius), qf, np.float32(0))
        # normalize -0.0 bins to +0.0: rint(-0.5) is -0.0, but the
        # decoder derives its bin from the *integer* code (code -
        # radius = +0.0), and recon must mirror that arithmetic down to
        # the sign of zero for the closed-loop bit-exactness contract
        np.add(q, np.float32(0.0), out=q)
        recon = q * two_eb  # the decoder's exact f32 formula
        np.add(pflat, recon, out=recon)
        err = recon - flat
        np.abs(err, out=err)
        # two-tier bound check: a conservative float32 compare accepts
        # the bulk; everything above the guard line — true outliers
        # plus the borderline sliver float32 cannot classify — is
        # re-verified with the exact float64 subtraction
        ok = err <= np.float32(eb * (1.0 - 1e-5))
        cand = np.flatnonzero(~ok)
        if cand.size:
            exact = (
                np.abs(
                    recon[cand].astype(np.float64)
                    - flat[cand].astype(np.float64)
                )
                <= eb
            )
            ok[cand[exact]] = True
            bad = cand[~exact]
        else:
            bad = cand
        codes = q + np.float32(radius)
        np.multiply(codes, ok, out=codes)
        codes = codes.astype(np.uint32)
    else:
        diff = flat.astype(np.float64) - pflat.astype(np.float64)
        finite_diff = np.where(np.isfinite(diff), diff, 0.0)
        q = np.rint(finite_diff / (2.0 * eb)).astype(np.int64)
        qsafe = np.abs(q) < radius
        # the bound check recomputes the reconstruction in exactly the
        # arithmetic the decompressor will use — the hard guarantee
        recon = _reconstruct(pflat, q, eb, flat.dtype)
        ok = qsafe & (
            np.abs(recon.astype(np.float64) - flat.astype(np.float64)) <= eb
        )
        # non-finite inputs are always stored exactly
        ok &= np.isfinite(flat)
        codes = np.where(ok, q + radius, 0).astype(np.uint32)
        bad = np.flatnonzero(~ok)

    outlier_val = flat[bad].copy()
    recon[bad] = flat[bad]
    return codes, bad.astype(np.int64), outlier_val, recon


def quantize(
    values: np.ndarray,
    pred: np.ndarray,
    eb: float,
    radius: int = DEFAULT_RADIUS,
    f32: bool = False,
) -> QuantizedBatch:
    """Quantize ``values - pred`` with absolute error bound ``eb``.

    ``f32=True`` enables the float32 fast path where :func:`_f32_mode`
    allows.  Enabling it changes the reconstruction arithmetic, so the
    caller must record the flag in its container and decode with the
    same flag (see :func:`dequantize`); callers with no place to record
    it keep the default and stay on the float64 formula.
    """
    if eb <= 0:
        raise ValueError(f"error bound must be > 0, got {eb}")
    values = np.asarray(values)
    pred = np.asarray(pred)
    if values.shape != pred.shape:
        raise ValueError("values and pred shapes differ")
    if values.dtype != pred.dtype:
        # the decompressor reconstructs from ``pred``'s dtype alone, so
        # a values/pred dtype mismatch would let the encoder verify the
        # bound against a different arithmetic than decode uses
        raise ValueError(
            f"values dtype {values.dtype} != pred dtype {pred.dtype}"
        )
    codes, pos, val, recon = _quantize_flat(
        values.reshape(-1), pred.reshape(-1), eb, radius, f32
    )
    return QuantizedBatch(
        codes=codes,
        outlier_pos=pos,
        outlier_val=val,
        recon=recon,
        radius=radius,
    )


def quantize_many(
    values: list[np.ndarray],
    preds: list[np.ndarray],
    eb: float,
    radius: int = DEFAULT_RADIUS,
    f32: bool = False,
) -> list[QuantizedBatch]:
    """Quantize several batches in one fused vectorized pass.

    All batches share one error bound and dtype (the sub-blocks of one
    STZ level, the bands of one wavelet transform, ...).  The batches
    are concatenated, quantized with a single :func:`_quantize_flat`
    pass — bit-identical to per-batch :func:`quantize`, since the core
    is element-wise — and split back, so the numpy dispatch cost of the
    ~10 vector operations is paid once per level instead of once per
    sub-block (DESIGN.md §2).  ``f32`` follows the same
    record-it-in-the-container contract as :func:`quantize`.
    """
    if eb <= 0:
        raise ValueError(f"error bound must be > 0, got {eb}")
    if len(values) != len(preds):
        raise ValueError("values and preds list lengths differ")
    if not values:
        return []
    flats = []
    pflats = []
    for v, p in zip(values, preds):
        v = np.asarray(v)
        p = np.asarray(p)
        if v.shape != p.shape:
            raise ValueError("values and pred shapes differ")
        if v.dtype != p.dtype:
            raise ValueError(
                f"values dtype {v.dtype} != pred dtype {p.dtype}"
            )
        if v.dtype != np.asarray(values[0]).dtype:
            raise ValueError("quantize_many requires one common dtype")
        flats.append(v.reshape(-1))
        pflats.append(p.reshape(-1))
    # fusing pays when blocks are small (dispatch amortization); for
    # large blocks the dispatch is negligible and the concatenate
    # copies are pure overhead — either way the results are
    # bit-identical because the core is element-wise
    sizes = np.array([f.size for f in flats], dtype=np.int64)
    if len(flats) == 1 or int(sizes.max()) >= (1 << 16):
        return [
            QuantizedBatch(*_quantize_flat(f, p, eb, radius, f32), radius)
            for f, p in zip(flats, pflats)
        ]
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    big_v = np.concatenate(flats)
    big_p = np.concatenate(pflats)
    codes, pos, val, recon = _quantize_flat(big_v, big_p, eb, radius, f32)

    cut = np.searchsorted(pos, bounds)
    out = []
    for k in range(len(flats)):
        s, e = int(bounds[k]), int(bounds[k + 1])
        out.append(
            QuantizedBatch(
                codes=codes[s:e],
                outlier_pos=pos[cut[k] : cut[k + 1]] - s,
                outlier_val=val[cut[k] : cut[k + 1]],
                radius=radius,
                recon=recon[s:e],
            )
        )
    return out


def dequantize_many(
    codes: list[np.ndarray],
    preds: list[np.ndarray],
    eb: float,
    outlier_pos: list[np.ndarray],
    outlier_val: list[np.ndarray],
    radius: int = DEFAULT_RADIUS,
    f32: bool = False,
) -> list[np.ndarray]:
    """Dequantize several batches in one fused vectorized pass.

    The decode-side mirror of :func:`quantize_many`: all batches share
    one error bound and dtype (the sub-blocks of one STZ level), so the
    code arithmetic and the reconstruction formula run once over the
    concatenation and the outlier scatter lands at offset-shifted
    positions — bit-identical to per-batch :func:`dequantize`, since
    every operation is element-wise.  The same fusion guard as
    :func:`quantize_many` applies: large batches skip the concatenate
    copies (their dispatch cost is already negligible).
    """
    if (
        len(codes) != len(preds)
        or len(codes) != len(outlier_pos)
        or len(codes) != len(outlier_val)
    ):
        raise ValueError("dequantize_many list lengths differ")
    if not codes:
        return []
    pflats = [np.asarray(p).reshape(-1) for p in preds]
    sizes = np.array([p.size for p in pflats], dtype=np.int64)
    if len(codes) == 1 or int(sizes.max()) >= (1 << 16):
        return [
            dequantize(c, p, eb, pos, val, radius, f32)
            for c, p, pos, val in zip(codes, pflats, outlier_pos, outlier_val)
        ]
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    big_codes = np.concatenate([np.asarray(c) for c in codes])
    big_pred = np.concatenate(pflats)
    big_pos = np.concatenate(
        [
            np.asarray(pos, dtype=np.int64) + s
            for pos, s in zip(outlier_pos, bounds)
        ]
    )
    big_val = (
        np.concatenate(outlier_val)
        if any(v.size for v in outlier_val)
        else np.zeros(0, dtype=big_pred.dtype)
    )
    recon = dequantize(big_codes, big_pred, eb, big_pos, big_val, radius, f32)
    return [
        recon[int(bounds[k]) : int(bounds[k + 1])] for k in range(len(codes))
    ]


def dequantize(
    codes: np.ndarray,
    pred: np.ndarray,
    eb: float,
    outlier_pos: np.ndarray,
    outlier_val: np.ndarray,
    radius: int = DEFAULT_RADIUS,
    f32: bool = False,
) -> np.ndarray:
    """Invert :func:`quantize`; returns the reconstruction, flat.

    ``f32`` must be the flag the *encoder* ran with, as recorded in the
    container (the STZ header's f32-quant bit); given the same flag the
    arithmetic selection mirrors the quantizer's bit-for-bit — float32
    reconstruction when the flag is set and :func:`_f32_mode` allows,
    the float64 formula otherwise.  The default decodes containers
    from encoders that never enabled the fast path (everything written
    before the flag existed, and every codec that has no header bit to
    record it).
    """
    pred = np.asarray(pred)
    codes = np.asarray(codes)
    pflat = pred.reshape(-1)
    f32_mode = f32 and _f32_mode(pred.dtype, pred.dtype, eb, radius)
    recon = jit.dequantize(codes, pflat, eb, radius, f32_mode)
    if recon is None:
        if f32_mode:
            qf = codes.astype(np.float32) - np.float32(radius)
            recon = pflat + qf * np.float32(2.0 * eb)
        else:
            q = codes.astype(np.int64) - radius
            recon = _reconstruct(pflat, q, eb, pred.dtype)
    if outlier_pos.size:
        recon[outlier_pos] = outlier_val
    return recon
