"""Entropy coding and quantization substrates.

Every compressor in this repository (STZ, SZ3-like, ZFP-like, MGARD-like,
SPERR-like) is assembled from the primitives in this package:

* :mod:`repro.encoding.bitstream` — vectorized variable-length bit packing,
* :mod:`repro.encoding.huffman` — canonical Huffman codec with a chunked,
  gather-based decoder (no per-symbol Python loop),
* :mod:`repro.encoding.quantizer` — SZ-style error-bounded linear quantizer
  with exact outlier storage,
* :mod:`repro.encoding.lossless` — zlib-backed lossless byte backend
  (stands in for zstd, which is unavailable offline),
* :mod:`repro.encoding.rle` — run-length coding for sparse integer streams.
"""

from repro.encoding.bitstream import pack_bits, unpack_bits
from repro.encoding.huffman import (
    HuffmanCodec,
    huffman_decode,
    huffman_decode_many,
    huffman_encode,
    huffman_encode_many,
)
from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.encoding.quantizer import (
    QuantizedBatch,
    dequantize,
    quantize,
    quantize_many,
)
from repro.encoding.rle import rle_decode, rle_encode

__all__ = [
    "pack_bits",
    "unpack_bits",
    "HuffmanCodec",
    "huffman_encode",
    "huffman_encode_many",
    "huffman_decode",
    "huffman_decode_many",
    "compress_bytes",
    "decompress_bytes",
    "QuantizedBatch",
    "quantize",
    "quantize_many",
    "dequantize",
    "rle_encode",
    "rle_decode",
]
