"""Run-length coding for integer arrays.

Used by the embedded bit-plane coders (ZFP-like / SPERR-like) where high
bit planes are overwhelmingly zero, and available as a standalone
primitive.  Fully vectorized via run-boundary detection.
"""

from __future__ import annotations

import numpy as np


def rle_encode(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (values, run_lengths) such that ``repeat(values, runs)``
    reproduces ``arr``."""
    arr = np.asarray(arr).reshape(-1)
    if arr.size == 0:
        return arr[:0].copy(), np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(arr[1:] != arr[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [arr.size]])
    return arr[starts].copy(), (ends - starts).astype(np.int64)


def rle_decode(values: np.ndarray, runs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    values = np.asarray(values)
    runs = np.asarray(runs, dtype=np.int64)
    if values.shape != runs.shape:
        raise ValueError("values and runs must have the same length")
    if np.any(runs < 0):
        raise ValueError("run lengths must be non-negative")
    return np.repeat(values, runs)
