"""Canonical Huffman codec, fully vectorized.

Huffman coding is the entropy stage of SZ3, MGARD and STZ (§2.1 of the
paper).  A textbook decoder walks the bitstream one symbol at a time,
which in pure Python is orders of magnitude too slow for the throughput
experiments (Table 3).  This implementation avoids per-symbol Python
loops on both sides:

Encoding
    Symbols are mapped to (codeword, length) with table gathers and
    packed with the vectorized scatter in
    :mod:`repro.encoding.bitstream`.  :func:`huffman_encode_many` fuses
    the gathers, the bit-offset cumsum and the pack scatter across all
    sub-block streams of an STZ level while emitting byte-identical
    segments — the encode-side mirror of the batched decoder below
    (DESIGN.md §2).

Decoding
    Code lengths are limited to 16 bits (Kraft fix-up), so a
    ``2**16``-entry table resolves the (symbol, length) of the codeword
    starting at any bit position with one gather.  To know *where*
    codewords start, the encoder stores the bit offset of every
    ``chunk``-th symbol (a few bytes per thousand symbols).  The decoder
    then advances all chunks in lockstep: iteration ``t`` decodes symbol
    ``t`` of every chunk simultaneously with batched gathers.  Total work
    is O(m) gathers for m symbols, and the chunks also parallelize across
    threads.  When the compiled kernels are available the same table
    walk runs as one GIL-releasing native call per segment
    (``jit.huffman_decode``), bit-identical by construction; the
    lockstep loop remains the ``STZ_JIT=0`` reference.

The segment produced by :func:`huffman_encode` is self-describing bytes;
:func:`huffman_decode` needs nothing else.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

import numpy as np

from repro.util import jit
from repro.util.cache import BoundedLRU

from repro.encoding.bitstream import pack_codes, pack_codes_at

MAX_CODE_LEN = 16
_MAGIC = 0xB7
_HEADER = struct.Struct("<BBIIQQII")
# magic, flags, chunk, alphabet, n_symbols, nbits, len(lens_z), len(sync_z)

_FLAG_CONST = 1


# ---------------------------------------------------------------------------
# code construction
# ---------------------------------------------------------------------------

def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Optimal prefix-code lengths (two-queue Huffman, O(n log n) in the
    sort).  Returns uint8 lengths, 0 for absent symbols."""
    freqs = np.asarray(freqs, dtype=np.int64)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    present = np.flatnonzero(freqs)
    n = present.size
    if n == 0:
        return lengths
    if n == 1:
        lengths[present[0]] = 1
        return lengths

    order = np.argsort(freqs[present], kind="stable")
    # compiled merge loop (repro.util.jit): identical tie-breaks and
    # depth walk, so the lengths — and every downstream segment byte —
    # match the Python two-queue below exactly
    depths = jit.huffman_tree(np.ascontiguousarray(freqs[present][order]))
    if depths is not None:
        lengths[present[order]] = depths
        return lengths
    leaf_freq = freqs[present][order].tolist()
    # merged-node queue; two-queue merge keeps both queues sorted so no heap
    # is needed.
    node_freq: list[int] = []
    parent = np.empty(2 * n - 1, dtype=np.int64)
    li = 0  # next leaf
    ni = 0  # next internal node
    created = 0
    for new_id in range(n, 2 * n - 1):
        picks = []
        for _ in range(2):
            take_leaf = li < n and (
                ni >= created or leaf_freq[li] <= node_freq[ni]
            )
            if take_leaf:
                picks.append((leaf_freq[li], li))
                li += 1
            else:
                picks.append((node_freq[ni], n + ni))
                ni += 1
        (f1, a), (f2, b) = picks
        parent[a] = new_id
        parent[b] = new_id
        node_freq.append(f1 + f2)
        created += 1

    root = 2 * n - 2
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(root - 1, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[present[order]] = depth[:n].astype(np.uint8)
    return lengths


def _limit_lengths(
    lengths: np.ndarray, freqs: np.ndarray, maxlen: int = MAX_CODE_LEN
) -> np.ndarray:
    """Clamp code lengths to ``maxlen`` and restore the Kraft inequality
    by lengthening the rarest symbols (near-optimal, zlib-style)."""
    L = lengths.astype(np.int64).copy()
    present = np.flatnonzero(L)
    if present.size == 0:
        return L.astype(np.uint8)
    if present.size > (1 << maxlen):
        raise ValueError(
            f"{present.size} distinct symbols cannot fit {maxlen}-bit codes"
        )
    L[present] = np.minimum(L[present], maxlen)
    limited = jit.huffman_limit(L, present, freqs, maxlen)
    if limited is not None:
        return limited
    budget = 1 << maxlen
    kraft = int(np.sum(1 << (maxlen - L[present])))
    if kraft > budget:
        by_rarity = present[np.argsort(freqs[present], kind="stable")]
        idx = 0
        while kraft > budget:
            s = by_rarity[idx % by_rarity.size]
            idx += 1
            if L[s] < maxlen:
                kraft -= 1 << (maxlen - L[s] - 1)
                L[s] += 1
    # tighten: shorten the most frequent symbols while Kraft allows
    by_freq = present[np.argsort(-freqs[present], kind="stable")]
    for s in by_freq:
        while L[s] > 1 and kraft + (1 << (maxlen - L[s])) <= budget:
            kraft += 1 << (maxlen - L[s])
            L[s] -= 1
    return L.astype(np.uint8)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given code lengths (uint32, by symbol)."""
    codes = np.zeros(lengths.size, dtype=np.uint32)
    present = np.flatnonzero(lengths)
    if present.size == 0:
        return codes
    lens = lengths[present].astype(np.int64)
    bl_count = np.bincount(lens, minlength=MAX_CODE_LEN + 1)
    next_code = np.zeros(MAX_CODE_LEN + 1, dtype=np.int64)
    code = 0
    for l in range(1, MAX_CODE_LEN + 1):
        code = (code + bl_count[l - 1]) << 1
        next_code[l] = code
    order = np.lexsort((present, lens))
    o_sym = present[order]
    o_len = lens[order]
    # rank within each length group
    group_start = np.zeros(o_len.size, dtype=np.int64)
    new_group = np.flatnonzero(np.diff(o_len)) + 1
    group_start[new_group] = new_group
    np.maximum.accumulate(group_start, out=group_start)
    rank = np.arange(o_len.size) - group_start
    codes[o_sym] = (next_code[o_len] + rank).astype(np.uint32)
    return codes


#: digest-of-lengths -> ready decode table.  Building a table is ~1 ms
#: of repeats/concatenates and segment shapes repeat heavily (every
#: frame of a stream, every case of a conformance sweep re-uses a
#: handful of code tables), so the cache turns the rebuild into a hash
#: of the lengths bytes.  Tables are 256 KiB each; the LRU bound keeps
#: the cache under ~8 MiB.  Entries are handed out read-only — decoders
#: only gather from them.  Safe under concurrent decodes (the serve
#: layer's request threads): each cache op is lock-guarded, and the
#: unsynchronized get→build→put window is the benign pure-function
#: race documented in :mod:`repro.util.cache` — a double build of the
#: identical table, never a torn one.
_TABLE_CACHE: BoundedLRU[np.ndarray] = BoundedLRU(32)


def _decode_table(lengths: np.ndarray) -> np.ndarray:
    """Fused window-lookup table: for every 16-bit window, ``(symbol <<
    5) | code_length`` of the codeword that starts there (canonical
    codes tile the window space contiguously).  One gather resolves both
    the emitted symbol and the bit advance.  Cached by a digest of the
    lengths bytes (the table is a pure function of them)."""
    key = hashlib.blake2b(lengths.tobytes(), digest_size=16).digest()
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = _build_decode_table(lengths)
        table.setflags(write=False)
        _TABLE_CACHE.put(key, table)
    return table


def _build_decode_table(lengths: np.ndarray) -> np.ndarray:
    present = np.flatnonzero(lengths)
    lens = lengths[present].astype(np.int64)
    order = np.lexsort((present, lens))
    o_sym = present[order].astype(np.uint32)
    o_len = lens[order]
    counts = (1 << (MAX_CODE_LEN - o_len)).astype(np.int64)
    fused = np.repeat(
        (o_sym << np.uint32(5)) | o_len.astype(np.uint32), counts
    )
    fill = (1 << MAX_CODE_LEN) - fused.size
    if fill > 0:  # incomplete Kraft sum after limiting: unreachable windows
        fused = np.concatenate(
            [fused, np.full(fill, MAX_CODE_LEN, dtype=np.uint32)]
        )
    return fused


def _choose_chunk(m: int) -> int:
    """Chunk size balancing decoder loop count (= chunk) against sync
    index overhead (~ m/chunk entries).  Targets ~256 chunks per
    segment: wide enough to amortize numpy dispatch, small enough that
    the sync index stays ~1% of the payload."""
    if m <= 256:
        return max(1, m)
    c = 64
    while c * 256 < m and c < 4096:
        c <<= 1
    return c


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def _normalize_symbols(symbols: np.ndarray) -> np.ndarray:
    symbols = np.ascontiguousarray(symbols)
    if symbols.ndim != 1:
        symbols = symbols.ravel()
    if symbols.size and symbols.dtype.kind not in "ui":
        raise TypeError("huffman_encode expects unsigned integer symbols")
    return symbols.astype(np.uint32, copy=False)


def _trivial_segment(freqs: np.ndarray, m: int) -> bytes | None:
    """Header-only segment for empty/constant streams, else None."""
    if m == 0:
        return _HEADER.pack(_MAGIC, 0, 0, 0, 0, 0, 0, 0)
    present = np.flatnonzero(freqs)
    if present.size == 1:
        return _HEADER.pack(
            _MAGIC, _FLAG_CONST, 0, freqs.size, m, int(present[0]), 0, 0
        )
    return None


def _assemble_segment(
    m: int,
    chunk: int,
    alphabet: int,
    nbits: int,
    lengths: np.ndarray,
    sync_starts: np.ndarray,
    packed: np.ndarray,
) -> bytes:
    """Serialize one non-trivial stream given its packed payload and
    the bit starts of every ``chunk``-th symbol (the sync index)."""
    sync = sync_starts.astype(np.uint64)
    sync_delta = np.diff(sync, prepend=np.uint64(0)).astype(np.uint32)
    lens_z = zlib.compress(lengths.tobytes(), 6)
    sync_z = zlib.compress(sync_delta.tobytes(), 6)
    header = _HEADER.pack(
        _MAGIC, 0, chunk, alphabet, m, nbits, len(lens_z), len(sync_z)
    )
    pad = b"\x00\x00\x00\x00"
    return b"".join([header, lens_z, sync_z, packed.tobytes(), pad])


def _pack_stream(
    symbols: np.ndarray,
    lengths: np.ndarray,
    codes: np.ndarray,
    chunk: int,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Pack one stream's payload: ``(packed, nbits, sync_starts)``.

    Prefers the compiled single-pass packer (repro.util.jit, DESIGN.md
    §10) which emits the payload bytes and the sync index in one walk;
    the vectorized gather/cumsum/scatter below is the byte-identical
    reference and the fallback."""
    compiled = jit.huffman_pack(
        symbols, (codes << np.uint32(5)) | lengths, chunk
    )
    if compiled is not None:
        return compiled
    sym_codes = codes[symbols]
    sym_lens = lengths[symbols].astype(np.int64)
    packed, nbits = pack_codes(sym_codes, sym_lens)
    starts = np.cumsum(sym_lens) - sym_lens
    return packed, nbits, starts[::chunk]


def huffman_encode(symbols: np.ndarray, chunk: int | None = None) -> bytes:
    """Encode a non-negative integer array into a self-describing segment."""
    symbols = _normalize_symbols(symbols)
    m = symbols.size
    freqs = np.bincount(symbols) if m else np.zeros(0, dtype=np.int64)
    trivial = _trivial_segment(freqs, m)
    if trivial is not None:
        return trivial

    lengths = _limit_lengths(_code_lengths(freqs), freqs)
    codes = _canonical_codes(lengths)

    if chunk is None:
        chunk = _choose_chunk(m)
    packed, nbits, sync = _pack_stream(symbols, lengths, codes, chunk)
    return _assemble_segment(
        m, chunk, freqs.size, nbits, lengths, sync, packed
    )


def huffman_encode_many(
    arrays: list[np.ndarray], chunk: int | None = None
) -> list[bytes]:
    """Encode several symbol arrays with one fused bit-packing scatter.

    Each returned segment is byte-identical to ``huffman_encode`` on the
    same input (same format, same code tables, same sync index) — only
    the *work* is batched: the per-symbol (code, length) gathers run
    over one concatenated symbol stream with per-stream table bases, and
    a single :func:`repro.encoding.bitstream.pack_codes_at` scatter
    packs every stream's payload into one buffer at byte-aligned
    per-stream bases.  This amortizes the numpy dispatch and the
    bincount scatter across all sub-blocks of an STZ level, mirroring
    what :func:`huffman_decode_many` does on the decode side (see
    DESIGN.md §2).
    """
    arrays = [_normalize_symbols(a) for a in arrays]
    results: list[bytes | None] = [None] * len(arrays)

    # per-stream code tables; trivial streams short-circuit to headers
    streams = []  # (result_idx, symbols, freqs, lengths, codes)
    for i, symbols in enumerate(arrays):
        m = symbols.size
        freqs = np.bincount(symbols) if m else np.zeros(0, dtype=np.int64)
        trivial = _trivial_segment(freqs, m)
        if trivial is not None:
            results[i] = trivial
            continue
        lengths = _limit_lengths(_code_lengths(freqs), freqs)
        streams.append((i, symbols, freqs, lengths, _canonical_codes(lengths)))
    if not streams:
        return results  # type: ignore[return-value]

    if jit.has("huff_pack"):
        # the compiled packer walks each stream once (payload bytes +
        # sync index in one pass), so there is nothing left to fuse —
        # per-stream segments are byte-identical to the path below
        for i, symbols, freqs, lengths, codes in streams:
            m = symbols.size
            chunk_k = chunk if chunk is not None else _choose_chunk(m)
            packed, nbits, sync = _pack_stream(symbols, lengths, codes, chunk_k)
            results[i] = _assemble_segment(
                m, chunk_k, freqs.size, nbits, lengths, sync, packed
            )
        return results  # type: ignore[return-value]

    # per-symbol gathers run per stream (each code table stays cache
    # resident) straight into shared slabs; everything downstream — the
    # bit-offset cumsum, the pack scatter, the sync indexes — is fused
    # across streams
    sizes = np.array([s[1].size for s in streams], dtype=np.int64)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    total_m = int(bounds[-1])
    # index arithmetic stays in 4-byte lanes when the totals allow
    # (16 bits/code means < 2**27 symbols keeps every bit offset int32)
    idt = np.int32 if total_m * MAX_CODE_LEN < 2**31 else np.int64
    # one gather per stream from a fused (code << 5 | length) table,
    # then two cheap unpack passes — instead of two table gathers
    combo = np.empty(total_m, dtype=np.uint32)
    for (_i, symbols, _f, lengths, codes), s, e in zip(
        streams, bounds, bounds[1:]
    ):
        np.take(
            (codes << np.uint32(5)) | lengths, symbols, out=combo[s:e]
        )
    sym_codes = combo >> np.uint32(5)
    sym_lens = combo & np.uint32(31)
    sym_lens = (
        sym_lens.view(np.int32) if idt is np.int32
        else sym_lens.astype(np.int64)
    )

    # bit geometry: per-stream totals, byte-aligned stream bases, and
    # one global cumsum shared by the pack scatter and the sync indexes
    # (explicit dtype: numpy's default cumsum accumulator is platform
    # int, which would silently promote the int32 lanes back to 8 bytes)
    ends = np.cumsum(sym_lens, dtype=idt)
    prefix_bits = np.concatenate([[0], ends[bounds[1:] - 1].astype(np.int64)])
    tot_bits = np.diff(prefix_bits)
    nbytes = (tot_bits + 7) >> 3
    byte_base = np.concatenate([[0], np.cumsum(nbytes)])
    # realign every stream to its byte-aligned base, reusing the cumsum
    # buffer: abs_starts = (ends - lens) + (8*byte_base - prefix_bits)
    np.subtract(ends, sym_lens, out=ends)
    abs_starts = ends
    abs_starts += np.repeat(
        (8 * byte_base[:-1] - prefix_bits[:-1]).astype(idt), sizes
    )

    big = pack_codes_at(
        sym_codes,
        sym_lens,
        abs_starts,
        int(byte_base[-1]),
        boundaries=bounds[1:-1],
    )

    for k, (i, symbols, freqs, lengths, _codes) in enumerate(streams):
        m = symbols.size
        packed = big[byte_base[k] : byte_base[k] + nbytes[k]]
        chunk_k = chunk if chunk is not None else _choose_chunk(m)
        results[i] = _assemble_segment(
            m,
            chunk_k,
            freqs.size,
            int(tot_bits[k]),
            lengths,
            abs_starts[bounds[k] : bounds[k + 1] : chunk_k]
            - idt(8 * byte_base[k]),
            packed,
        )
    return results  # type: ignore[return-value]


def huffman_decode(blob: bytes | memoryview) -> np.ndarray:
    """Decode a segment produced by :func:`huffman_encode` (uint32)."""
    return huffman_decode_many([blob])[0]


def _parse_segment(blob: bytes | memoryview):
    blob = memoryview(blob)
    (magic, flags, chunk, alphabet, m, nbits, n_lens, n_sync) = _HEADER.unpack(
        blob[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise ValueError("not a huffman segment (bad magic)")
    if m == 0:
        return ("empty", np.zeros(0, dtype=np.uint32))
    if flags & _FLAG_CONST:
        return ("const", np.full(m, np.uint32(nbits), dtype=np.uint32))
    off = _HEADER.size
    lengths = np.frombuffer(
        zlib.decompress(blob[off : off + n_lens]), dtype=np.uint8
    )
    off += n_lens
    sync_delta = np.frombuffer(
        zlib.decompress(blob[off : off + n_sync]), dtype=np.uint32
    )
    off += n_sync
    payload = blob[off:]
    sync = np.cumsum(sync_delta.astype(np.int64))
    return ("stream", (chunk, m, lengths, sync, payload))


def _decode_stream_compiled(spec) -> np.ndarray | None:
    """One stream through the compiled table-driven decoder, or None.

    The kernel decodes each chunk sequentially from its sync offset —
    the symbols are a pure function of the (table, payload, sync) walk,
    so the output is bit-identical to the reference lockstep loop (and
    already in symbol order: no transpose pass).  The ctypes call
    releases the GIL, which is what lets :func:`huffman_decode_many`'s
    thread fan-out (and the chunk-parallel decode executors above it)
    actually overlap entropy decoding."""
    chunk, m, lengths, sync, payload = spec
    return jit.huffman_decode(
        np.frombuffer(payload, dtype=np.uint8),
        _decode_table(lengths),
        sync,
        chunk,
        m,
    )


def huffman_decode_many(
    blobs: list[bytes | memoryview],
    threads: int | None = None,
) -> list[np.ndarray]:
    """Decode several segments in one interleaved chunk-parallel loop.

    When the compiled decoder (``repro.util.jit``, DESIGN.md §10) is
    available, each stream decodes through one GIL-releasing native
    call instead; ``threads`` (optional) fans the per-stream calls
    across a thread pool — profitable exactly because the kernel drops
    the GIL.  The pure-NumPy path below is the byte-identical reference
    and the ``STZ_JIT=0`` fallback: it advances all chunks of *all*
    segments in lockstep, so the per-step numpy dispatch overhead is
    shared across every stream — this is what makes decompressing the
    many per-sub-block segments of an STZ level as cheap as one
    monolithic stream.  Per-segment code tables are fused into one
    array indexed by ``(segment_base | window)``.
    """
    parsed = [_parse_segment(b) for b in blobs]
    streams = [
        (i, spec) for i, (kind, spec) in enumerate(parsed) if kind == "stream"
    ]
    results: list[np.ndarray | None] = [
        spec if kind != "stream" else None for kind, spec in parsed
    ]
    if not streams:
        return results  # type: ignore[return-value]

    if jit.has("huff_decode"):
        specs = [spec for _i, spec in streams]
        if threads is not None and len(specs) > 1:
            # lazy import: encoding stays import-independent of the
            # executor layer except on this opt-in threaded branch
            from repro.core.parallel import pmap

            decoded = pmap(_decode_stream_compiled, specs, threads)
        else:
            decoded = [_decode_stream_compiled(s) for s in specs]
        if all(d is not None for d in decoded):
            for (i, _spec), syms in zip(streams, decoded):
                results[i] = syms
            return results  # type: ignore[return-value]
        # a stream declined (corrupt sync geometry): the whole batch
        # falls back so damaged archives keep the reference behavior

    tables = []
    payload_parts: list[np.ndarray] = []
    pos_parts: list[np.ndarray] = []
    base_parts: list[np.ndarray] = []
    meta = []  # (result_idx, chunk, m, nchunks)
    steps = 0
    bit_off = 0
    for k, (i, (chunk, m, lengths, sync, payload)) in enumerate(streams):
        tables.append(_decode_table(lengths))
        buf = np.frombuffer(payload, dtype=np.uint8)
        payload_parts.append(buf)
        pos_parts.append(sync + bit_off)
        base_parts.append(
            np.full(sync.size, k << MAX_CODE_LEN, dtype=np.int64)
        )
        last = m - (sync.size - 1) * chunk
        steps = max(steps, chunk if sync.size > 1 else last)
        meta.append((i, chunk, m, sync.size))
        bit_off += buf.size * 8

    # shared byte buffer; generous tail padding lets the loop run past
    # stream ends without any per-step clamping (garbage is trimmed)
    pad = np.zeros(2 * steps + 8, dtype=np.uint8)
    big = np.concatenate(payload_parts + [pad])
    # 24-bit windows anchored at every byte: covers any in-byte offset
    u24 = (
        (big[:-2].astype(np.uint32) << np.uint32(16))
        | (big[1:-1].astype(np.uint32) << np.uint32(8))
        | big[2:].astype(np.uint32)
    )
    table = np.concatenate(tables)

    pos = np.concatenate(pos_parts)
    base = np.concatenate(base_parts)
    width = pos.size
    out = np.empty((steps, width), dtype=np.uint32)
    mask = np.uint32(0xFFFF)
    shift_base = np.uint32(8)
    low5 = np.uint32(31)
    for t in range(steps):
        w = (u24[pos >> 3] >> (shift_base - (pos & 7).astype(np.uint32))) & mask
        e = table[base + w]
        out[t] = e
        pos += e & low5

    col = 0
    for i, chunk, m, nchunks in meta:
        seg = out[:, col : col + nchunks]
        col += nchunks
        if nchunks > 1:
            syms = np.ascontiguousarray(seg[:chunk].T).reshape(-1)[:m]
        else:
            syms = seg[:, 0][:m].copy()
        results[i] = syms >> np.uint32(5)
    return results  # type: ignore[return-value]


def huffman_decode_range(
    blob: bytes | memoryview, start: int, count: int
) -> np.ndarray:
    """Decode only symbols ``[start, start + count)`` of a segment.

    This is the paper's stated future-work item (§5: "enable
    random-access Huffman decoding to further reduce the overhead in
    random-access decompression").  The encoder already stores the bit
    offset of every chunk boundary, so decoding can begin at the first
    chunk covering ``start`` and stop after the chunk covering the last
    requested symbol — O(count + chunk) work instead of O(m).
    """
    if start < 0 or count < 0:
        raise ValueError("start and count must be non-negative")
    kind, spec = _parse_segment(blob)
    if kind == "empty":
        if start != 0 or count != 0:
            raise IndexError("range outside segment")
        return np.zeros(0, dtype=np.uint32)
    if kind == "const":
        if start + count > spec.size:
            raise IndexError("range outside segment")
        return spec[start : start + count]
    chunk, m, lengths, sync, payload = spec
    if start + count > m:
        raise IndexError("range outside segment")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)

    first_chunk = start // chunk
    last_chunk = (start + count - 1) // chunk
    nchunks = last_chunk - first_chunk + 1
    table = _decode_table(lengths)
    buf = np.frombuffer(payload, dtype=np.uint8)

    # symbols to decode in the last selected chunk
    last_total = min(m - last_chunk * chunk, chunk)
    steps = chunk if nchunks > 1 else (
        min(start + count - first_chunk * chunk, last_total)
    )
    lo = start - first_chunk * chunk

    # compiled chunk-bounded decode: same O(count + chunk) bound (the
    # kernel walks only the selected chunks' bits), same symbols by
    # construction; codeword-suffix window bits past the last chunk's
    # boundary cannot change a canonical-table lookup, so slicing the
    # payload is unnecessary here
    total = (nchunks - 1) * chunk + (last_total if nchunks > 1 else steps)
    syms = jit.huffman_decode(
        buf,
        table,
        np.ascontiguousarray(sync[first_chunk : last_chunk + 1]),
        chunk,
        total,
    )
    if syms is not None:
        return syms[lo : lo + count]
    # touch only the bytes covering the selected chunks, so a sliver
    # read stays O(count) instead of O(m): the window runs from the
    # first selected chunk's sync position to the next chunk boundary
    # (or payload end); codeword-suffix window bits past the boundary
    # are zero-filled, which canonical-table lookups ignore.
    first_bit = int(sync[first_chunk])
    end_bit = (
        int(sync[last_chunk + 1])
        if last_chunk + 1 < sync.size
        else buf.size * 8
    )
    byte0 = first_bit >> 3
    byte1 = min(buf.size, (end_bit + 7) >> 3)
    pad = np.zeros(2 * steps + 8, dtype=np.uint8)
    big = np.concatenate([buf[byte0:byte1], pad])
    u24 = (
        (big[:-2].astype(np.uint32) << np.uint32(16))
        | (big[1:-1].astype(np.uint32) << np.uint32(8))
        | big[2:].astype(np.uint32)
    )
    pos = sync[first_chunk : last_chunk + 1] - byte0 * 8
    out = np.empty((steps, nchunks), dtype=np.uint32)
    mask = np.uint32(0xFFFF)
    shift_base = np.uint32(8)
    low5 = np.uint32(31)
    for t in range(steps):
        w = (u24[pos >> 3] >> (shift_base - (pos & 7).astype(np.uint32))) & mask
        e = table[w]
        out[t] = e
        pos += e & low5
    syms = np.ascontiguousarray(out.T).reshape(-1) >> np.uint32(5)
    return syms[lo : lo + count]


class HuffmanCodec:
    """Object wrapper exposing the code table for inspection/testing."""

    def __init__(self, freqs: np.ndarray):
        freqs = np.asarray(freqs, dtype=np.int64)
        self.lengths = _limit_lengths(_code_lengths(freqs), freqs)
        self.codes = _canonical_codes(self.lengths)

    def expected_bits(self, freqs: np.ndarray) -> int:
        """Total payload bits this table spends on the given histogram."""
        freqs = np.asarray(freqs, dtype=np.int64)
        return int(np.sum(freqs * self.lengths[: freqs.size]))

    @staticmethod
    def encode(symbols: np.ndarray) -> bytes:
        return huffman_encode(symbols)

    @staticmethod
    def decode(blob: bytes) -> np.ndarray:
        return huffman_decode(blob)
