"""Lossless byte backend.

SZ3 finishes with zstd; zstd is not installable offline so we use zlib
(same DEFLATE family).  All compressors in this repo go through this one
backend so cross-compressor ratio comparisons stay fair.  A one-byte tag
lets us fall back to raw storage when DEFLATE does not help
(incompressible outlier payloads, tiny segments).
"""

from __future__ import annotations

import zlib

_RAW = b"\x00"
_ZLIB = b"\x01"


def compress_bytes(data: bytes, level: int = 1) -> bytes:
    """Compress ``data``; never grows by more than one byte."""
    if level < 0 or level > 9:
        raise ValueError("zlib level must be in [0, 9]")
    if level == 0 or len(data) < 64:
        return _RAW + data
    z = zlib.compress(data, level)
    if len(z) >= len(data):
        return _RAW + data
    return _ZLIB + z


def decompress_bytes(blob: bytes | memoryview) -> bytes:
    blob = memoryview(blob)
    tag = bytes(blob[:1])
    body = blob[1:]
    if tag == _RAW:
        return bytes(body)
    if tag == _ZLIB:
        return zlib.decompress(body)
    raise ValueError(f"unknown lossless tag {tag!r}")
