"""Lossless byte backend.

SZ3 finishes with zstd; zstd is not installable offline so we use zlib
(same DEFLATE family).  All compressors in this repo go through this one
backend so cross-compressor ratio comparisons stay fair.  A one-byte tag
lets us fall back to raw storage when DEFLATE does not help
(incompressible outlier payloads, tiny segments).
"""

from __future__ import annotations

import zlib

_RAW = b"\x00"
_ZLIB = b"\x01"

#: probe geometry: total sample budget, split across head/middle/tail
_PROBE_SAMPLE = 8192
#: run DEFLATE on the full payload only if the sample shrank below this
_PROBE_RATIO = 0.98


def compress_bytes(data: bytes, level: int = 1, probe: bool = False) -> bytes:
    """Compress ``data``; never grows by more than one byte.

    With ``probe=True``, large payloads are first test-compressed on a
    small head+middle+tail sample (three regions, so compressibility
    concentrated away from any single region — or an atypical prefix
    like a Huffman segment's zlib-packed table — still registers); if
    the sample does not shrink, the payload is stored raw without
    paying DEFLATE over the full buffer.  This is how the batched
    encode path skips zlib on Huffman segments, which are near
    entropy-optimal already and almost never deflate (DESIGN.md §3).
    The output stays decodable by :func:`decompress_bytes` either way —
    only the raw-vs-deflate decision changes.
    """
    if level < 0 or level > 9:
        raise ValueError("zlib level must be in [0, 9]")
    if level == 0 or len(data) < 64:
        return _RAW + data
    if probe and len(data) > 4 * _PROBE_SAMPLE:
        part = _PROBE_SAMPLE // 3
        mid = (len(data) - part) // 2
        sample = (
            bytes(data[:part])
            + bytes(data[mid : mid + part])
            + bytes(data[-part:])
        )
        if len(zlib.compress(sample, level)) > _PROBE_RATIO * len(sample):
            return _RAW + data
    z = zlib.compress(data, level)
    if len(z) >= len(data):
        return _RAW + data
    return _ZLIB + z


def decompress_bytes(blob: bytes | memoryview) -> bytes:
    blob = memoryview(blob)
    tag = bytes(blob[:1])
    body = blob[1:]
    if tag == _RAW:
        return bytes(body)
    if tag == _ZLIB:
        return zlib.decompress(body)
    raise ValueError(f"unknown lossless tag {tag!r}")
