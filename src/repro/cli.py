"""Command-line interface for the STZ compressor.

Installed as ``stz`` (see pyproject).  Works on ``.npy`` arrays or raw
binary with explicit ``--shape``/``--dtype``.

Examples::

    stz compress field.npy field.stz --eb 1e-3 --mode rel
    stz info field.stz
    stz decompress field.stz out.npy --level 1        # coarse preview
    stz roi field.stz slab.npy --box 10:20,:,64       # random access
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.api import decompress, decompress_progressive, decompress_roi
from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress
from repro.core.stream import KIND_NAMES, StreamReader
from repro.util.alloc import tune_allocator


def _load_array(
    path: str, shape: str | None, dtype: str | None
) -> np.ndarray:
    p = Path(path)
    if p.suffix == ".npy":
        return np.load(p)
    if shape is None or dtype is None:
        raise SystemExit(
            "raw binary input needs --shape and --dtype (or use .npy)"
        )
    dims = tuple(int(s) for s in shape.split(","))
    return np.fromfile(p, dtype=np.dtype(dtype)).reshape(dims)


def _save_array(path: str, arr: np.ndarray) -> None:
    p = Path(path)
    if p.suffix == ".npy":
        np.save(p, arr)
    else:
        arr.tofile(p)


def _parse_box(spec: str, ndim: int) -> tuple:
    """Parse 'a:b,c:d,e' into a ROI tuple of slices/ints."""
    parts = spec.split(",")
    if len(parts) != ndim:
        raise SystemExit(f"--box needs {ndim} comma-separated entries")
    roi = []
    for part in parts:
        if part == ":":
            roi.append(slice(None))
        elif ":" in part:
            lo, hi = part.split(":")
            roi.append(slice(int(lo) if lo else None, int(hi) if hi else None))
        else:
            roi.append(int(part))
    return tuple(roi)


def cmd_compress(args: argparse.Namespace) -> int:
    data = _load_array(args.input, args.shape, args.dtype)
    config = STZConfig(levels=args.levels, interp=args.interp)
    blob = stz_compress(
        data, args.eb, args.mode, config=config, threads=args.threads
    )
    Path(args.output).write_bytes(blob)
    print(
        f"{args.input}: {data.nbytes} B -> {len(blob)} B "
        f"(CR {data.nbytes / len(blob):.2f})"
    )
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    if args.level is not None:
        arr = decompress_progressive(blob, args.level, threads=args.threads)
    else:
        arr = decompress(blob, threads=args.threads)
    _save_array(args.output, arr)
    print(f"{args.output}: {arr.shape} {arr.dtype}")
    return 0


def cmd_roi(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    reader = StreamReader(blob)
    roi = _parse_box(args.box, reader.header.ndim)
    arr = decompress_roi(reader, roi, threads=args.threads)
    _save_array(args.output, arr)
    print(f"{args.output}: {arr.shape} {arr.dtype}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    reader = StreamReader(Path(args.input).read_bytes())
    h = reader.header
    cfg = h.config
    print(f"shape      : {'x'.join(map(str, h.shape))} ({h.dtype})")
    print(f"levels     : {cfg.levels} (interp={cfg.interp}, "
          f"mode={cfg.cubic_mode}, residual={cfg.residual_codec})")
    print(f"error bound: {h.abs_eb:g} (adaptive={cfg.adaptive_eb}, "
          f"ratio={cfg.eb_ratio})")
    print(f"segments   : {len(h.segments)}")
    for s in h.segments:
        print(
            f"  level {s.level}  eps={''.join(map(str, s.eps))}  "
            f"{KIND_NAMES[s.kind]:14s} {s.length:>10d} B"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="stz",
        description="STZ streaming error-bounded lossy compressor "
        "(SC'25 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress an array")
    c.add_argument("input", help=".npy file or raw binary")
    c.add_argument("output", help="output .stz container")
    c.add_argument("--eb", type=float, required=True, help="error bound")
    c.add_argument("--mode", choices=("abs", "rel"), default="rel")
    c.add_argument("--levels", type=int, default=3)
    c.add_argument(
        "--interp", choices=("direct", "linear", "cubic"), default="cubic"
    )
    c.add_argument("--shape", help="dims for raw input, e.g. 64,64,64")
    c.add_argument("--dtype", help="dtype for raw input, e.g. float32")
    c.add_argument("--threads", type=int, default=None)
    c.set_defaults(fn=cmd_compress)

    d = sub.add_parser("decompress", help="reconstruct (optionally coarse)")
    d.add_argument("input")
    d.add_argument("output", help=".npy or raw binary output")
    d.add_argument(
        "--level", type=int, default=None,
        help="progressive level (1 = coarsest; default full)",
    )
    d.add_argument("--threads", type=int, default=None)
    d.set_defaults(fn=cmd_decompress)

    r = sub.add_parser("roi", help="random-access decompress a region")
    r.add_argument("input")
    r.add_argument("output")
    r.add_argument(
        "--box", required=True,
        help="per-axis slices, e.g. '10:20,:,64' (ints pick one index)",
    )
    r.add_argument("--threads", type=int, default=None)
    r.set_defaults(fn=cmd_roi)

    i = sub.add_parser("info", help="show container metadata")
    i.add_argument("input")
    i.set_defaults(fn=cmd_info)
    return ap


def main(argv: list[str] | None = None) -> int:
    tune_allocator()  # opt-in malloc tuning at the entry point only
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
