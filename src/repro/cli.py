"""Command-line interface for the STZ compressor.

Installed as ``stz`` (see pyproject).  Works on ``.npy`` arrays or raw
binary with explicit ``--shape``/``--dtype``.

Examples::

    stz compress field.npy field.stz --eb 1e-3 --mode rel
    stz compress field.npy field.stz --eb 1e-3 --codec auto
    stz compress big.npy big.stz --eb 1e-3 --chunks 64 --workers 4
    stz info field.stz
    stz decompress field.stz out.npy --level 1        # coarse preview
    stz decompress big.stz slab.npy --roi 10:20,:,64  # chunk index
    stz roi field.stz slab.npy --box 10:20,:,64       # random access
    stz stream steps.stz t0.npy t1.npy t2.npy --eb 1e-3
    stz stream steps.stz run.npy --eb 1e-3 --time-axis 0
    stz stream steps.stz t*.npy --eb 1e-3 --chunks 64 # sharded frames
    stz decompress steps.stz t5.npy --frame 5         # one time step
    stz compress field.npy field.stz --eb 1e-3 --chunks 64 --checksum
    stz stream steps.stz t*.npy --eb 1e-3 --recoverable
    stz verify field.stz                              # integrity scrub
    stz repair broken.stz fixed.stz                   # salvage a crash
    stz decompress damaged.stz out.npy --on-error fill
    stz serve --port 8641 --workers 4 --cache-mb 256  # HTTP service

All file outputs are written atomically (temp + fsync + rename): a
crash mid-write leaves the previous file intact, never a torn one.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.api import (
    compress,
    compress_chunked,
    decompress,
    decompress_progressive,
    decompress_roi,
)
from repro.core.chunked import decompress_chunked, decompress_chunked_roi
from repro.core.integrity import (
    DecodeReport,
    repair_archive,
    verify_archive,
)
from repro.core.partition import ChunkPlan
from repro.core.config import KNOWN_CODECS, STZConfig
from repro.core.parallel import EXECUTORS
from repro.core.stream import (
    CODEC_NAMES,
    CODEC_STZ,
    KIND_NAMES,
    ShardedReader,
    StreamReader,
    is_multiframe,
    is_selected,
    is_sharded,
    unwrap_selected,
)
from repro.core.streaming import (
    DEFAULT_KEYFRAME_INTERVAL,
    StreamingCompressor,
    StreamingDecompressor,
)
from repro.util.alloc import tune_allocator
from repro.util.io import atomic_write, atomic_write_bytes


def _load_array(
    path: str, shape: str | None, dtype: str | None, mmap: bool = False
) -> np.ndarray:
    """Load an input array; ``mmap=True`` opens it memory-mapped so the
    chunked engine's O(chunk) bound survives inputs larger than RAM."""
    p = Path(path)
    if p.suffix == ".npy":
        return np.load(p, mmap_mode="r" if mmap else None)
    if shape is None or dtype is None:
        raise SystemExit(
            "raw binary input needs --shape and --dtype (or use .npy)"
        )
    dims = tuple(int(s) for s in shape.split(","))
    dt = np.dtype(dtype)
    if mmap:
        # np.memmap only requires the file to be *at least* this big;
        # match fromfile().reshape()'s exact-size failure mode instead
        # of silently compressing a prefix of a larger file
        expected = int(np.prod(dims)) * dt.itemsize
        actual = p.stat().st_size
        if actual != expected:
            raise SystemExit(
                f"{path}: {actual} B does not match --shape {shape} "
                f"--dtype {dtype} ({expected} B)"
            )
        return np.memmap(p, dtype=dt, mode="r", shape=dims)
    return np.fromfile(p, dtype=dt).reshape(dims)


def _save_array(path: str, arr: np.ndarray) -> None:
    # atomic: a crash (or Ctrl-C) mid-save never leaves a torn output
    p = Path(path)
    with atomic_write(p) as fh:
        if p.suffix == ".npy":
            np.save(fh, arr)
        else:
            arr.tofile(fh)


def _parse_box(spec: str, ndim: int) -> tuple:
    """Parse 'a:b,c:d,e' into a ROI tuple of slices/ints."""
    parts = spec.split(",")
    if len(parts) != ndim:
        raise SystemExit(f"--box needs {ndim} comma-separated entries")
    roi = []
    for part in parts:
        if part == ":":
            roi.append(slice(None))
        elif ":" in part:
            lo, hi = part.split(":")
            roi.append(slice(int(lo) if lo else None, int(hi) if hi else None))
        else:
            roi.append(int(part))
    return tuple(roi)


def _parse_chunks(spec: str | None) -> int | tuple[int, ...] | None:
    """Parse a --chunks spec: one edge ('64') or per-axis ('64,64,32')."""
    if spec is None:
        return None
    parts = [int(s) for s in spec.split(",")]
    return parts[0] if len(parts) == 1 else tuple(parts)


def cmd_compress(args: argparse.Namespace) -> int:
    chunks = _parse_chunks(args.chunks)
    # chunked inputs stay memory-mapped: the engine slices one chunk at
    # a time, so a full np.load here would be the only O(array) step
    data = _load_array(
        args.input, args.shape, args.dtype, mmap=chunks is not None
    )
    config = STZConfig(
        levels=args.levels,
        interp=args.interp,
        codec=args.codec,
        select_seed=args.select_seed,
    )
    if chunks is not None:
        # chunked engine: stream the sharded archive straight to disk
        # (atomically — the output appears complete or not at all)
        with atomic_write(args.output) as sink:
            compress_chunked(
                data, args.eb, args.mode, config=config, chunks=chunks,
                executor=args.executor, workers=args.workers,
                threads=args.threads, sink=sink,
                checksum=args.checksum, recoverable=args.recoverable,
            )
        nout = Path(args.output).stat().st_size
        # same normalization compress_chunked applied — no need to
        # reopen and re-parse the archive just for the count
        nchunks = ChunkPlan.regular(data.shape, chunks).nchunks
        print(
            f"{args.input}: {data.nbytes} B -> {nout} B "
            f"(CR {data.nbytes / nout:.2f}) [sharded, {nchunks} chunks]"
        )
        return 0
    if args.recoverable:
        raise SystemExit(
            "--recoverable applies to chunked (--chunks) and stream "
            "archives; single-array containers are written atomically "
            "instead"
        )
    blob = compress(
        data, args.eb, args.mode, config=config, threads=args.threads,
        checksum=args.checksum,
    )
    atomic_write_bytes(args.output, blob)
    chosen = (
        f" [codec {CODEC_NAMES[unwrap_selected(blob)[0]]}]"
        if is_selected(blob)
        else ""
    )
    print(
        f"{args.input}: {data.nbytes} B -> {len(blob)} B "
        f"(CR {data.nbytes / len(blob):.2f}){chosen}"
    )
    return 0


def _iter_input_steps(args: argparse.Namespace):
    """Yield time steps lazily from the stream command's inputs.

    Each input file is one step, unless ``--time-axis`` is given, in
    which case every file is split along that axis (chunked input: a
    simulation writing N steps per restart file streams as N frames).
    """
    for path in args.inputs:
        arr = _load_array(path, args.shape, args.dtype)
        if args.time_axis is None:
            yield arr
            continue
        if not (-arr.ndim <= args.time_axis < arr.ndim):
            raise SystemExit(
                f"--time-axis {args.time_axis} out of range for "
                f"{arr.ndim}-D input {path}"
            )
        for k in range(arr.shape[args.time_axis]):
            yield np.ascontiguousarray(np.take(arr, k, axis=args.time_axis))


def cmd_stream(args: argparse.Namespace) -> int:
    config = STZConfig(
        levels=args.levels,
        interp=args.interp,
        codec=args.codec,
        select_seed=args.select_seed,
    )
    in_bytes = 0
    # atomic sink: a crash (or the empty-input SystemExit below) leaves
    # no torn archive behind — only a complete stream is renamed into
    # place.  With --recoverable the *renamed* archive additionally
    # survives truncation by later mishaps (stz repair).
    with atomic_write(args.output) as sink:
        with StreamingCompressor(
            args.eb,
            args.mode,
            config=config,
            keyframe_interval=args.keyframe_interval,
            sink=sink,
            threads=args.threads,
            overlap=args.overlap,
            chunks=_parse_chunks(args.chunks),
            chunk_executor=args.executor,
            chunk_workers=args.workers,
            checksum=args.checksum,
            recoverable=args.recoverable,
        ) as sc:
            pending = []
            for step in _iter_input_steps(args):
                in_bytes += step.nbytes
                # overlap mode pipelines the encode behind the next
                # file load, so stats resolve (and print) one step late
                pending.append(sc.append(step))
                while pending and (
                    not args.overlap or pending[0].done()
                ):
                    st = pending.pop(0)
                    if args.overlap:
                        st = st.result()
                    kind = "delta" if st.is_delta else "intra"
                    print(
                        f"  step {st.index}: {kind} {st.codec} {st.nbytes} B"
                    )
            for fut in pending:
                st = fut.result()
                kind = "delta" if st.is_delta else "intra"
                print(f"  step {st.index}: {kind} {st.codec} {st.nbytes} B")
            nframes = sc.nframes
        if nframes == 0:
            # inside the atomic context: the temp file is discarded and
            # no archive (empty or otherwise) is left behind
            raise SystemExit("no time steps in input")
    out_bytes = Path(args.output).stat().st_size
    print(
        f"{args.output}: {nframes} steps, {in_bytes} B -> {out_bytes} B "
        f"(CR {in_bytes / out_bytes:.2f})"
    )
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    # a report is only kept for tolerant policies: with 'raise' the
    # first corrupt unit aborts the decode anyway
    report = DecodeReport() if args.on_error != "raise" else None
    with open(args.input, "rb") as fh:
        if is_multiframe(fh):
            if args.level is not None:
                raise SystemExit(
                    "--level only applies to single-frame archives"
                )
            if args.roi is not None:
                raise SystemExit(
                    "--roi does not apply to multi-frame archives "
                    "(extract a step with --frame first)"
                )
            # file source: only the table and the needed frames are read
            sd = StreamingDecompressor(
                fh, threads=args.threads, on_error=args.on_error,
                report=report,
            )
            if sd.nframes == 0:
                raise SystemExit(f"{args.input}: archive has no frames")
            if args.frame is not None:
                arr = sd.read_frame(args.frame)
            else:
                # all steps, stacked along a new leading time axis
                arr = np.stack(list(sd), axis=0)
        elif args.frame is not None:
            raise SystemExit("--frame only applies to multi-frame archives")
        elif is_sharded(fh):
            if args.level is not None:
                raise SystemExit(
                    "sharded (chunked) archives do not support --level"
                )
            reader = ShardedReader(fh)
            if args.roi is not None:
                # chunk-index random access: only intersecting chunks
                # are read and decoded
                roi = _parse_box(args.roi, len(reader.shape))
                arr = decompress_chunked_roi(
                    reader, roi, threads=args.threads,
                    workers=args.workers,
                    on_error=args.on_error, report=report,
                )
            else:
                # --workers picks the chunk pool explicitly; a bare
                # --threads means "parallel decode" too (api.decompress
                # semantics: chunk-level is where v3 parallelism lives)
                workers = args.workers or args.threads
                if workers and workers > 1:
                    arr = decompress_chunked(
                        reader, executor="thread", workers=workers,
                        on_error=args.on_error, report=report,
                    )
                else:
                    arr = decompress_chunked(
                        reader, threads=args.threads,
                        on_error=args.on_error, report=report,
                    )
        else:
            blob = fh.read()
            if args.roi is not None and args.level is not None:
                raise SystemExit("--roi and --level are mutually exclusive")
            if args.roi is not None:
                arr = _roi_decode(blob, args.roi, args.threads)
            elif args.level is not None:
                try:
                    arr = decompress_progressive(
                        blob, args.level, threads=args.threads
                    )
                except ValueError as exc:
                    if "progressive" in str(exc):
                        # selected backend without progressive decode:
                        # a clean message, like cmd_roi's capability path
                        raise SystemExit(str(exc)) from None
                    raise
            else:
                arr = decompress(blob, threads=args.threads)
    _save_array(args.output, arr)
    print(f"{args.output}: {arr.shape} {arr.dtype}")
    if report is not None and not report.ok:
        # degraded output: say so loudly, but exit 0 — the caller asked
        # for best-effort extraction
        print(f"warning: {report.summary()}", file=sys.stderr)
    return 0


def _roi_decode(
    blob: bytes, spec: str, threads: int | None, workers: int | None = None
) -> np.ndarray:
    """Random-access decode shared by ``stz roi`` and ``stz decompress
    --roi``: sharded archives go through the chunk index, STZ1 (plain
    or enveloped) through the sub-block index."""
    if is_sharded(blob):
        reader = ShardedReader(blob)
        roi = _parse_box(spec, len(reader.shape))
        return decompress_chunked_roi(
            reader, roi, threads=threads, workers=workers
        )
    if is_selected(blob):
        codec_id, payload = unwrap_selected(blob)
        if codec_id != CODEC_STZ:
            raise SystemExit(
                f"selected codec {CODEC_NAMES[codec_id]!r} does not "
                "support random access"
            )
        blob = bytes(payload)
    reader = StreamReader(blob)
    roi = _parse_box(spec, reader.header.ndim)
    return decompress_roi(reader, roi, threads=threads)


def cmd_roi(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as fh:
        if is_sharded(fh):
            # chunk-index random access straight off the file handle:
            # only the table and intersecting payloads are read
            reader = ShardedReader(fh)
            roi = _parse_box(args.box, len(reader.shape))
            arr = decompress_chunked_roi(reader, roi, threads=args.threads)
        else:
            arr = _roi_decode(fh.read(), args.box, args.threads)
    _save_array(args.output, arr)
    print(f"{args.output}: {arr.shape} {arr.dtype}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as fh:
        if is_sharded(fh):
            reader = ShardedReader(fh)
            plan = reader.plan
            print(
                f"shape      : {'x'.join(map(str, plan.shape))} "
                f"({reader.dtype})"
            )
            print(
                f"chunks     : {reader.nchunks} "
                f"(grid {'x'.join(map(str, plan.grid))}, chunk "
                f"{'x'.join(map(str, plan.chunk_shape))}; sharded "
                "container v3)"
            )
            for entry in reader.chunks:
                info = plan.chunk(entry.index)
                origin = ",".join(map(str, info.origin))
                print(
                    f"  chunk {entry.index:>4d}  @[{origin}]  "
                    f"{entry.codec:6s} {entry.length:>10d} B"
                )
            return 0
        if is_multiframe(fh):
            sd = StreamingDecompressor(fh)
            # shape/eb live in the per-frame containers; peek at the
            # first *intra* STZ-coded frame — codec-selected archives
            # may route frames to backends with their own header
            # layouts, and a delta frame's header carries the
            # ulp-trimmed residual bound, not the stream's bound
            stz_frames = [
                f
                for f in sd.reader.frames
                if f.codec_id == CODEC_STZ
                and not f.is_delta
                and not f.is_sharded
            ]
            h = (
                sd.reader.open_frame(stz_frames[0].index).header
                if stz_frames
                else None
            )
            print(f"frames     : {sd.nframes} (multi-frame container v2)")
            if h is not None:
                print(
                    f"shape      : {'x'.join(map(str, h.shape))} ({h.dtype})"
                )
                print(f"error bound: {h.abs_eb:g}")
            elif sd.reader.frames and sd.reader.frames[0].is_sharded:
                # all-sharded stream: shape/dtype live in the v3 head
                sh = ShardedReader(sd.reader.read_frame(0))
                print(
                    f"shape      : {'x'.join(map(str, sh.shape))} "
                    f"({sh.dtype}) [sharded frames, chunk "
                    f"{'x'.join(map(str, sh.plan.chunk_shape))}]"
                )
            for f in sd.reader.frames:
                kind = "delta" if f.is_delta else "intra"
                print(
                    f"  frame {f.index:>4d}  {kind:5s} "
                    f"{f.codec:6s} {f.length:>10d} B"
                )
            return 0
        blob = fh.read()
    if is_selected(blob):
        codec_id, payload = unwrap_selected(blob)
        name = CODEC_NAMES[codec_id]
        print(f"codec      : {name} (codec-selected envelope)")
        if codec_id != CODEC_STZ:
            print(f"payload    : {len(payload)} B ({name} container)")
            return 0
        blob = bytes(payload)
    reader = StreamReader(blob)
    h = reader.header
    cfg = h.config
    print(f"shape      : {'x'.join(map(str, h.shape))} ({h.dtype})")
    print(f"levels     : {cfg.levels} (interp={cfg.interp}, "
          f"mode={cfg.cubic_mode}, residual={cfg.residual_codec})")
    print(f"error bound: {h.abs_eb:g} (adaptive={cfg.adaptive_eb}, "
          f"ratio={cfg.eb_ratio})")
    print(f"segments   : {len(h.segments)}")
    for s in h.segments:
        print(
            f"  level {s.level}  eps={''.join(map(str, s.eps))}  "
            f"{KIND_NAMES[s.kind]:14s} {s.length:>10d} B"
        )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    try:
        report = verify_archive(blob)
    except ValueError as exc:
        print(f"{args.input}: unreadable: {exc}", file=sys.stderr)
        return 1
    for unit in report.units:
        print(f"  {unit.describe()}")
    print(f"{args.input}: {report.summary()}")
    if report.corrupt:
        return 1
    if args.strict and report.unchecked:
        # strict mode treats "no checksum recorded" as a failure —
        # useful in CI to enforce that fixtures carry integrity data
        print(
            f"{args.input}: strict: {len(report.unchecked)} unit(s) "
            "carry no checksum",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    # local import: the asyncio serve stack should not tax every other
    # subcommand's startup
    import asyncio

    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_timeout=args.timeout if args.timeout > 0 else None,
        quota_bytes=args.quota_mb * 1024 * 1024,
        cache_bytes=args.cache_mb * 1024 * 1024,
        executor=args.executor,
        workers=args.workers,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    try:
        rebuilt, report = repair_archive(blob)
    except ValueError as exc:
        raise SystemExit(f"{args.input}: cannot repair: {exc}") from None
    atomic_write_bytes(args.output, rebuilt)
    print(f"{args.output}: {report.summary()}")
    return 0


def _add_integrity_args(p: argparse.ArgumentParser) -> None:
    """The write-side integrity knobs shared by compress and stream."""
    p.add_argument(
        "--checksum", action="store_true",
        help="record per-unit CRC32s and a whole-archive digest "
        "(verified by 'stz verify' and at decode time)",
    )
    p.add_argument(
        "--recoverable", action="store_true",
        help="prefix each unit with a self-describing record so a "
        "truncated archive can be salvaged by 'stz repair' "
        "(implies --checksum)",
    )


def _add_chunk_args(p: argparse.ArgumentParser) -> None:
    """The chunked-engine knobs shared by compress and stream."""
    p.add_argument(
        "--chunks", default=None, metavar="SPEC",
        help="chunked engine: per-axis chunk shape ('64' or '64,64,32'); "
        "emits a sharded (container v3) archive",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="chunk-level worker count (with --chunks)",
    )
    p.add_argument(
        "--executor", choices=EXECUTORS, default="thread",
        help="chunk-level executor (with --chunks); 'process' uses a "
        "fork pool that slices chunks in the workers",
    )


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="stz",
        description="STZ streaming error-bounded lossy compressor "
        "(SC'25 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress an array")
    c.add_argument("input", help=".npy file or raw binary")
    c.add_argument("output", help="output .stz container")
    c.add_argument("--eb", type=float, required=True, help="error bound")
    c.add_argument("--mode", choices=("abs", "rel"), default="rel")
    c.add_argument("--levels", type=int, default=3)
    c.add_argument(
        "--interp", choices=("direct", "linear", "cubic"), default="cubic"
    )
    c.add_argument(
        "--codec", choices=KNOWN_CODECS, default="stz",
        help="backend: a fixed codec, or 'auto' to probe the data and "
        "route it to the winning backend (default: stz)",
    )
    c.add_argument(
        "--select-seed", type=int, default=0,
        help="seed for the auto selector (same input + seed -> "
        "byte-identical output)",
    )
    c.add_argument("--shape", help="dims for raw input, e.g. 64,64,64")
    c.add_argument("--dtype", help="dtype for raw input, e.g. float32")
    c.add_argument("--threads", type=int, default=None)
    _add_chunk_args(c)
    _add_integrity_args(c)
    c.set_defaults(fn=cmd_compress)

    s = sub.add_parser(
        "stream",
        help="compress a time-step sequence into a multi-frame archive",
    )
    s.add_argument("output", help="output multi-frame .stz container")
    s.add_argument(
        "inputs", nargs="+",
        help=".npy/raw files, one time step each (see --time-axis)",
    )
    s.add_argument("--eb", type=float, required=True, help="error bound")
    s.add_argument(
        "--mode", choices=("abs", "rel"), default="rel",
        help="rel resolves against the first step's value range",
    )
    s.add_argument(
        "--time-axis", type=int, default=None,
        help="split every input file into steps along this axis "
        "(default: one step per file)",
    )
    s.add_argument(
        "--keyframe-interval", type=int, default=DEFAULT_KEYFRAME_INTERVAL,
        help="intra-frame cadence; 1 disables temporal prediction",
    )
    s.add_argument("--levels", type=int, default=3)
    s.add_argument(
        "--interp", choices=("direct", "linear", "cubic"), default="cubic"
    )
    s.add_argument(
        "--codec", choices=KNOWN_CODECS, default="stz",
        help="backend per frame: fixed, or 'auto' for per-step "
        "re-selection with keyframe re-probe (default: stz)",
    )
    s.add_argument(
        "--select-seed", type=int, default=0,
        help="seed for the auto selector's exploration schedule",
    )
    s.add_argument(
        "--overlap", action="store_true",
        help="double-buffer: load/validate the next step while the "
        "previous one encodes (same archive bytes as without)",
    )
    s.add_argument("--shape", help="dims of one raw input, e.g. 64,64,64")
    s.add_argument("--dtype", help="dtype for raw input, e.g. float32")
    s.add_argument("--threads", type=int, default=None)
    _add_chunk_args(s)
    _add_integrity_args(s)
    s.set_defaults(fn=cmd_stream)

    d = sub.add_parser("decompress", help="reconstruct (optionally coarse)")
    d.add_argument("input")
    d.add_argument("output", help=".npy or raw binary output")
    d.add_argument(
        "--level", type=int, default=None,
        help="progressive level (1 = coarsest; default full)",
    )
    d.add_argument(
        "--frame", type=int, default=None,
        help="multi-frame archives: extract one time step "
        "(default: all steps stacked along a new axis 0)",
    )
    d.add_argument(
        "--roi", default=None, metavar="BOX",
        help="random-access a region, e.g. '10:20,:,64'; sharded "
        "archives touch only the intersecting chunks",
    )
    d.add_argument(
        "--workers", type=int, default=None,
        help="sharded archives: parallel chunk-level decode workers",
    )
    d.add_argument(
        "--on-error", choices=("raise", "skip", "fill"), default="raise",
        help="fault policy for corrupt chunks/frames: abort (default), "
        "or NaN-fill the damaged region and keep going (a warning "
        "summarizes what was lost)",
    )
    d.add_argument("--threads", type=int, default=None)
    d.set_defaults(fn=cmd_decompress)

    r = sub.add_parser("roi", help="random-access decompress a region")
    r.add_argument("input")
    r.add_argument("output")
    r.add_argument(
        "--box", required=True,
        help="per-axis slices, e.g. '10:20,:,64' (ints pick one index)",
    )
    r.add_argument("--threads", type=int, default=None)
    r.set_defaults(fn=cmd_roi)

    i = sub.add_parser("info", help="show container metadata")
    i.add_argument("input")
    i.set_defaults(fn=cmd_info)

    v = sub.add_parser(
        "verify",
        help="scrub an archive's checksums (exit 1 on corruption)",
    )
    v.add_argument("input")
    v.add_argument(
        "--strict", action="store_true",
        help="also fail when the archive carries no checksums at all",
    )
    v.set_defaults(fn=cmd_verify)

    sv = sub.add_parser(
        "serve",
        help="run the multi-tenant compression service (HTTP)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8641)
    sv.add_argument(
        "--executor", choices=EXECUTORS, default="thread",
        help="shared worker-pool kind for all tenants' CPU work",
    )
    sv.add_argument(
        "--workers", type=int, default=2,
        help="chunk-level workers in the shared pool",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=4,
        help="gated requests executing concurrently",
    )
    sv.add_argument(
        "--max-queue", type=int, default=16,
        help="gated requests allowed to wait; beyond this the server "
        "answers 429 with Retry-After",
    )
    sv.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request wall-clock budget in seconds (<=0 disables); "
        "expiry answers 503 and cancels the pooled work",
    )
    sv.add_argument(
        "--quota-mb", type=int, default=256,
        help="per-tenant byte quota (stored archives + streamed steps)",
    )
    sv.add_argument(
        "--cache-mb", type=int, default=64,
        help="decoded-chunk LRU cache capacity (0 disables)",
    )
    sv.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "repair",
        help="salvage the longest valid prefix of a truncated "
        "recoverable archive",
    )
    p.add_argument("input", help="damaged archive (written --recoverable)")
    p.add_argument("output", help="rebuilt archive")
    p.set_defaults(fn=cmd_repair)
    return ap


def main(argv: list[str] | None = None) -> int:
    tune_allocator()  # opt-in malloc tuning at the entry point only
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
