"""SPERR-like codec: CDF 9/7 wavelet + per-level coding + outlier pass.

Wavelet coefficients are uniformly quantized at ``eb / quality`` (the
quality factor absorbs the synthesis gain of the biorthogonal basis) and
Huffman-coded *per resolution level* — one segment per level, coarsest
readable without the rest, which is what makes the codec
resolution-progressive like SPERR.

Because a transform coder cannot bound point-wise error by construction,
compression finishes with SPERR's signature *outlier correction*: the
encoder reconstructs, finds every point whose error exceeds the bound,
and stores a quantized correction for it.  The decoder applies the
corrections, so ``max|x - x_hat| <= eb`` is a hard guarantee.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoding.huffman import (
    huffman_decode,
    huffman_encode_many,
)
from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.encoding.quantizer import (
    DEFAULT_RADIUS,
    dequantize,
    quantize_many,
)
from repro.sperr.wavelet import (
    DC_GAIN,
    cdf97_forward,
    cdf97_inverse,
    corner_shapes,
    level_band_regions,
    max_levels,
)
from repro.util.sections import pack_sections, unpack_sections
from repro.util.validation import (
    as_float_array,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)

_MAGIC = b"SPRr"
_VERSION = 1
_HEADER = struct.Struct("<4sBBBBddI")
# magic, version, dtype, ndim, levels, eb, quality, radius
DEFAULT_QUALITY = 4.0


def _encode_bands(
    coeffs: np.ndarray,
    bands: list[list[tuple[slice, ...]]],
    ebw: float,
    radius: int,
    zlib_level: int,
) -> list[bytes]:
    """Quantize + Huffman every resolution level's band, batched.

    Bands cover disjoint coefficient rectangles, so all levels quantize
    in one fused :func:`quantize_many` pass and entropy-code through
    one :func:`huffman_encode_many` pack (DESIGN.md §2); per-band
    payload bytes are unchanged from the per-band path.  The
    dequantized values are written back into ``coeffs`` so the
    encoder's outlier pass sees exactly the decoder's reconstruction.
    """
    live = [(i, regions) for i, regions in enumerate(bands) if regions]
    vals = [
        np.concatenate([coeffs[r].reshape(-1) for r in regions])
        for _i, regions in live
    ]
    qbs = quantize_many(vals, [np.zeros_like(v) for v in vals], ebw, radius)
    huffs = huffman_encode_many([qb.codes for qb in qbs])
    payloads = [b""] * len(bands)
    for (i, regions), qb, huff in zip(live, qbs, huffs):
        off = 0
        for r in regions:
            size = coeffs[r].size
            coeffs[r] = qb.recon[off : off + size].reshape(coeffs[r].shape)
            off += size
        payloads[i] = pack_sections(
            [
                compress_bytes(huff, zlib_level),
                struct.pack("<Q", qb.outlier_pos.size)
                + qb.outlier_pos.astype(np.uint64).tobytes()
                + qb.outlier_val.tobytes(),
            ]
        )
    return payloads


def _decode_band(
    payload: bytes | memoryview,
    coeffs: np.ndarray,
    regions: list[tuple[slice, ...]],
    ebw: float,
    radius: int,
) -> None:
    if len(payload) == 0 or not regions:
        return
    sections = unpack_sections(payload)
    codes = huffman_decode(decompress_bytes(sections[0]))
    blob = bytes(sections[1])
    (n_out,) = struct.unpack_from("<Q", blob, 0)
    pos = np.frombuffer(blob, dtype=np.uint64, count=n_out, offset=8).astype(
        np.int64
    )
    val = np.frombuffer(blob, dtype=np.float64, offset=8 + 8 * n_out)
    rec = dequantize(
        codes, np.zeros(codes.size, dtype=np.float64), ebw, pos, val, radius
    )
    off = 0
    for r in regions:
        size = coeffs[r].size
        coeffs[r] = rec[off : off + size].reshape(coeffs[r].shape)
        off += size


def sperr_compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    levels: int | None = None,
    quality: float = DEFAULT_QUALITY,
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
) -> bytes:
    """Compress with hard absolute/relative L-infinity bound ``eb``."""
    return _sperr_compress_impl(
        data, eb, eb_mode, levels, quality, radius, zlib_level, False
    )[0]


def sperr_compress_with_recon(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    levels: int | None = None,
    quality: float = DEFAULT_QUALITY,
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
) -> tuple[bytes, np.ndarray]:
    """:func:`sperr_compress` plus the decoder's exact reconstruction.

    The outlier-correction pass already reconstructs from the
    *dequantized* coefficients (written back band by band during
    encoding), which is bit-identical to what the decoder rebuilds from
    the payloads; applying the quantized corrections to that
    reconstruction reproduces :func:`sperr_decompress`'s output exactly
    — no second inverse transform, no decompression pass.
    """
    blob, recon = _sperr_compress_impl(
        data, eb, eb_mode, levels, quality, radius, zlib_level, True
    )
    return blob, recon


def _sperr_compress_impl(
    data: np.ndarray,
    eb: float,
    eb_mode: str,
    levels: int | None,
    quality: float,
    radius: int,
    zlib_level: int,
    want_recon: bool,
) -> tuple[bytes, np.ndarray | None]:
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    L = levels if levels is not None else max_levels(data.shape)
    ebw = abs_eb / quality

    coeffs = cdf97_forward(data, L)
    bands = level_band_regions(data.shape, L)  # finest..coarsest, then root
    payloads = _encode_bands(coeffs, bands, ebw, radius, zlib_level)

    # outlier correction pass against the decoder's reconstruction
    rec = cdf97_inverse(coeffs, L)
    resid = data.astype(np.float64) - rec
    bad = np.flatnonzero(np.abs(resid).reshape(-1) > abs_eb)
    corr = np.rint(resid.reshape(-1)[bad] / abs_eb).astype(np.int32)
    outliers = (
        struct.pack("<Q", bad.size)
        + bad.astype(np.uint64).tobytes()
        + corr.tobytes()
    )

    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        dtype_code(data.dtype),
        data.ndim,
        L,
        abs_eb,
        quality,
        radius,
    ) + struct.pack(f"<{data.ndim}Q", *data.shape)
    blob = pack_sections(
        [header, compress_bytes(outliers, max(zlib_level, 1)), *payloads]
    )
    if not want_recon:
        return blob, None
    # mirror the decoder's final correction + cast on the encoder-side
    # reconstruction (int32 corrections round-trip exactly)
    rec.reshape(-1)[bad] += corr.astype(np.float64) * abs_eb
    return blob, np.ascontiguousarray(rec.astype(data.dtype))


def sperr_decompress(
    blob: bytes | memoryview, level: int | None = None
) -> np.ndarray:
    """Decompress fully, or progressively: ``level=k`` decodes only the
    root plus the ``k-1`` coarsest detail levels and returns the
    low-resolution corner block (k=1 -> root lattice).

    The progressive path skips the finer levels' segments entirely —
    wavelet-domain decode savings, as in SPERR.
    """
    sections = unpack_sections(blob)
    header = bytes(sections[0])
    magic, version, dt, ndim, L, abs_eb, quality, radius = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise ValueError("not a SPERR-like container")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    shape = struct.unpack(f"<{ndim}Q", header[_HEADER.size :])
    dtype = dtype_from_code(dt)
    ebw = abs_eb / quality
    bands = level_band_regions(shape, L)
    payloads = sections[2:]

    if level is not None:
        if not (1 <= level <= L + 1):
            raise ValueError(f"level must be in [1, {L + 1}]")
        keep = level - 1  # number of detail levels to decode
        cshapes = corner_shapes(shape, L)
        coeffs = np.zeros(cshapes[L - keep], dtype=np.float64)
        sub_bands = level_band_regions(cshapes[L - keep], keep)
        # root
        _decode_band(payloads[L], coeffs, sub_bands[keep], ebw, radius)
        for k in range(keep):  # finest kept .. coarsest detail
            _decode_band(
                payloads[L - keep + k], coeffs, sub_bands[k], ebw, radius
            )
        out = cdf97_inverse(coeffs, keep) if keep else coeffs
        # undo the low-pass scaling so the preview is value-comparable
        # with the original field
        out = out / DC_GAIN ** (ndim * (L - keep))
        return np.ascontiguousarray(out.astype(dtype))

    coeffs = np.zeros(shape, dtype=np.float64)
    for regions, payload in zip(bands, payloads):
        _decode_band(payload, coeffs, regions, ebw, radius)
    rec = cdf97_inverse(coeffs, L)

    blob_out = decompress_bytes(sections[1])
    (n_out,) = struct.unpack_from("<Q", blob_out, 0)
    if n_out:
        pos = np.frombuffer(
            blob_out, dtype=np.uint64, count=n_out, offset=8
        ).astype(np.int64)
        corr = np.frombuffer(blob_out, dtype=np.int32, offset=8 + 8 * n_out)
        flat = rec.reshape(-1)
        flat[pos] += corr.astype(np.float64) * abs_eb
    return np.ascontiguousarray(rec.astype(dtype))


class SPERRCompressor:
    """Object API with Table 1 capability flags."""

    name = "SPERR"
    supports_progressive = True
    supports_random_access = False

    def __init__(self, eb: float, eb_mode: str = "abs"):
        self.eb = eb
        self.eb_mode = eb_mode

    def compress(self, data: np.ndarray) -> bytes:
        return sperr_compress(data, self.eb, self.eb_mode)

    def decompress(self, blob: bytes) -> np.ndarray:
        return sperr_decompress(blob)
