"""CDF 9/7 lifting wavelet transform for N-D arrays.

The biorthogonal Cohen-Daubechies-Feauveau 9/7 wavelet (the lossy
JPEG2000 / SPERR transform) implemented as four lifting steps plus
scaling, applied separably along each axis, recursing on the low-pass
corner block (Mallat pyramid).  Odd lengths and whole-sample symmetric
boundary extension are handled by index clamping, which for the ±1
neighbor offsets of the lifting stencils is exactly the mirror rule
``x[-1] = x[1]``, ``x[n] = x[n-2]``.

The transform is implemented out-of-place per axis on float64 and the
inverse reverses every step with the same clamping, so
``inverse(forward(x))`` recovers ``x`` to floating-point roundoff (a
property the tests assert).
"""

from __future__ import annotations

import numpy as np

# lifting coefficients (Daubechies & Sweldens 1998 factorization)
ALPHA = -1.586134342059924
BETA = -0.052980118572961
GAMMA = 0.882911075530934
DELTA = 0.443506852043971
KAPPA = 1.149604398860241  # scaling


def _axslice(ndim: int, axis: int, sl: slice) -> tuple[slice, ...]:
    return tuple(sl if a == axis else slice(None) for a in range(ndim))


def _neighbor_sum(
    arr: np.ndarray, axis: int, left_clamp: bool
) -> np.ndarray:
    """For step arrays: sum of the two stencil neighbors with mirror
    clamping.  ``left_clamp`` selects the (i-1, i) pattern; otherwise
    (i, i+1)."""
    n = arr.shape[axis]
    if left_clamp:
        # pairs (i-1, i), i-1 clamped to 0
        idx_prev = np.concatenate([[0], np.arange(0, n - 1)])
        prev = np.take(arr, idx_prev, axis=axis)
        return prev + arr
    idx_next = np.concatenate([np.arange(1, n), [n - 1]])
    nxt = np.take(arr, idx_next, axis=axis)
    return arr + nxt


def _lift_axis_forward(arr: np.ndarray, axis: int) -> np.ndarray:
    """One CDF 9/7 forward pass along ``axis``; returns the array with
    low-pass coefficients packed first, then high-pass."""
    n = arr.shape[axis]
    if n < 2:
        return arr.copy()
    ndim = arr.ndim
    s = np.ascontiguousarray(arr[_axslice(ndim, axis, slice(0, None, 2))])
    d = np.ascontiguousarray(arr[_axslice(ndim, axis, slice(1, None, 2))])
    ne = s.shape[axis]

    # predict 1: d += alpha * (s_i + s_{i+1})   [clamp right]
    sd = _neighbor_sum(s, axis, left_clamp=False)
    d = d + ALPHA * np.take(sd, np.arange(d.shape[axis]), axis=axis)
    # update 1: s += beta * (d_{i-1} + d_i)     [clamp left]
    dsum = _neighbor_sum(d, axis, left_clamp=True)
    if dsum.shape[axis] < ne:  # odd length: last even mirrors the last d
        last = np.take(d, [-1], axis=axis) * 2.0
        dsum = np.concatenate([dsum, last], axis=axis)
    s = s + BETA * dsum
    # predict 2: d += gamma * (s_i + s_{i+1})
    sd = _neighbor_sum(s, axis, left_clamp=False)
    d = d + GAMMA * np.take(sd, np.arange(d.shape[axis]), axis=axis)
    # update 2: s += delta * (d_{i-1} + d_i)
    dsum = _neighbor_sum(d, axis, left_clamp=True)
    if dsum.shape[axis] < ne:
        last = np.take(d, [-1], axis=axis) * 2.0
        dsum = np.concatenate([dsum, last], axis=axis)
    s = s + DELTA * dsum
    # scale
    s = s * KAPPA
    d = d * (1.0 / KAPPA)
    return np.concatenate([s, d], axis=axis)


def _lift_axis_inverse(arr: np.ndarray, axis: int) -> np.ndarray:
    """Exact inverse of :func:`_lift_axis_forward`."""
    n = arr.shape[axis]
    if n < 2:
        return arr.copy()
    ndim = arr.ndim
    ne = -(-n // 2)
    s = np.ascontiguousarray(arr[_axslice(ndim, axis, slice(0, ne))])
    d = np.ascontiguousarray(arr[_axslice(ndim, axis, slice(ne, None))])

    s = s * (1.0 / KAPPA)
    d = d * KAPPA
    dsum = _neighbor_sum(d, axis, left_clamp=True)
    if dsum.shape[axis] < ne:
        last = np.take(d, [-1], axis=axis) * 2.0
        dsum = np.concatenate([dsum, last], axis=axis)
    s = s - DELTA * dsum
    sd = _neighbor_sum(s, axis, left_clamp=False)
    d = d - GAMMA * np.take(sd, np.arange(d.shape[axis]), axis=axis)
    dsum = _neighbor_sum(d, axis, left_clamp=True)
    if dsum.shape[axis] < ne:
        last = np.take(d, [-1], axis=axis) * 2.0
        dsum = np.concatenate([dsum, last], axis=axis)
    s = s - BETA * dsum
    sd = _neighbor_sum(s, axis, left_clamp=False)
    d = d - ALPHA * np.take(sd, np.arange(d.shape[axis]), axis=axis)

    out = np.empty_like(arr)
    out[_axslice(ndim, axis, slice(0, None, 2))] = s
    out[_axslice(ndim, axis, slice(1, None, 2))] = d
    return out


def dc_gain() -> float:
    """Exact low-pass DC gain of one lifting pass.

    The clamped boundary rule preserves constant signals, so a constant
    input yields exactly ``gain * c`` in every low-pass coefficient —
    used to value-normalize progressive previews.
    """
    return float(_lift_axis_forward(np.ones(4), 0)[0])


DC_GAIN = dc_gain()


def corner_shapes(
    shape: tuple[int, ...], levels: int
) -> list[tuple[int, ...]]:
    """Low-pass corner block shape after each level (index 0 = full)."""
    shapes = [tuple(shape)]
    for _ in range(levels):
        shapes.append(tuple(-(-n // 2) for n in shapes[-1]))
    return shapes


def max_levels(shape: tuple[int, ...], cap: int = 4) -> int:
    """Decompose while every axis stays >= 8 points."""
    levels = 0
    dims = list(shape)
    while min(dims) >= 8 and levels < cap:
        dims = [-(-n // 2) for n in dims]
        levels += 1
    return max(1, levels)


def cdf97_forward(data: np.ndarray, levels: int) -> np.ndarray:
    """Multi-level forward transform (float64 pyramid layout)."""
    out = data.astype(np.float64, copy=True)
    shapes = corner_shapes(data.shape, levels)
    for k in range(levels):
        region = tuple(slice(0, n) for n in shapes[k])
        block = np.ascontiguousarray(out[region])
        for axis in range(data.ndim):
            if block.shape[axis] >= 2:
                block = _lift_axis_forward(block, axis)
        out[region] = block
    return out


def cdf97_inverse(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Exact inverse of :func:`cdf97_forward`."""
    out = coeffs.astype(np.float64, copy=True)
    shapes = corner_shapes(coeffs.shape, levels)
    for k in range(levels - 1, -1, -1):
        region = tuple(slice(0, n) for n in shapes[k])
        block = np.ascontiguousarray(out[region])
        for axis in range(coeffs.ndim - 1, -1, -1):
            if block.shape[axis] >= 2:
                block = _lift_axis_inverse(block, axis)
        out[region] = block
    return out


def level_band_regions(
    shape: tuple[int, ...], levels: int
) -> list[list[tuple[slice, ...]]]:
    """Detail-band rectangles per level (finest first), plus the root.

    Element ``k`` (k = 0 .. levels-1) lists the rectangles holding the
    level-``k+1`` detail coefficients in the pyramid layout; element
    ``levels`` is the single root low-pass rectangle.
    """
    import itertools

    shapes = corner_shapes(shape, levels)
    out: list[list[tuple[slice, ...]]] = []
    for k in range(levels):
        outer, inner = shapes[k], shapes[k + 1]
        rects = []
        for pattern in itertools.product((0, 1), repeat=len(shape)):
            if not any(pattern):
                continue
            rect = tuple(
                slice(0, i) if p == 0 else slice(i, o)
                for p, i, o in zip(pattern, inner, outer)
            )
            if all(s.stop > s.start for s in rect):
                rects.append(rect)
        out.append(rects)
    out.append([tuple(slice(0, n) for n in shapes[levels])])
    return out
