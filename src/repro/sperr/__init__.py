"""SPERR-like wavelet compressor.

From-scratch reproduction of the SPERR design (Li, Lindstrom & Clyne,
IPDPS'23): a multi-level CDF 9/7 wavelet transform decorrelates the
field globally, coefficients are coded per resolution level, and a
final *outlier correction* pass stores exact fixes for any point whose
reconstruction error would exceed the bound — giving a hard L-infinity
guarantee on top of a transform coder.

Character reproduced from the paper's evaluation: the global transform
captures widespread high-frequency structure (best rate-distortion on
the Magnetic-Reconnection/Miranda-like datasets, Figure 11), it is
resolution-progressive (Table 1), and the many full-grid lifting passes
make it by far the slowest compressor (Table 3; "up to 37x slower" than
STZ).
"""

from repro.sperr.codec import SPERRCompressor, sperr_compress, sperr_decompress
from repro.sperr.wavelet import cdf97_forward, cdf97_inverse

__all__ = [
    "SPERRCompressor",
    "sperr_compress",
    "sperr_decompress",
    "cdf97_forward",
    "cdf97_inverse",
]
