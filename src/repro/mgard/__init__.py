"""MGARD-like multigrid error-controlled compressor.

From-scratch reproduction of the MGARD design (Ainsworth et al.;
MGARD-X is its accelerated implementation): a *transform-style*
multilevel decomposition — decimate, predict with multilinear
interpolation, keep the hierarchical surpluses as detail coefficients,
optionally apply an L2-projection-like correction to the coarse level —
followed by level-scaled quantization and Huffman coding.

Character reproduced from the paper's evaluation: resolution-progressive
decompression (Table 1), mid compression quality (linear basis < the
cubic prediction of SZ3/STZ, Figure 11), and low speed (full-grid
decompose/recompose passes plus tridiagonal solves per level, Table 3).
"""

from repro.mgard.codec import MGARDCompressor, mgard_compress, mgard_decompress

__all__ = ["MGARDCompressor", "mgard_compress", "mgard_decompress"]
