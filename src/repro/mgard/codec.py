"""MGARD-like codec: multilevel surplus decomposition + correction.

Decomposition (fine -> coarse, per level):

1. split the lattice into its stride-2 decimation and the ``2**d - 1``
   parity detail blocks;
2. detail coefficients = actual values - multilinear prediction from the
   decimated lattice (the hierarchical surplus of the piecewise-linear
   basis);
3. quantize the detail coefficients *now*, and compute the correction
   from the **dequantized** coefficients: ``coarse' = decimated +
   corr(d_hat)``.  Because the decompressor decodes the same ``d_hat``,
   the correction cancels exactly during recomposition, so it improves
   the stored coarse representation (MGARD's L2 projection role) without
   costing error-bound slack;
4. recurse on the corrected coarse lattice; the tiny root is stored raw.

The level error budget is geometric (``eb/2`` at the finest detail
level, ``eb/4`` next, ...), which keeps the telescoped L-infinity error
strictly within ``eb``.

The correction operator is the adjoint of multilinear interpolation
followed by a damped tensor mass-matrix solve (tridiagonal [1/6, 2/3,
1/6] per axis) — the multigrid smoother that gives MGARD both its
quality character and its computational cost.
"""

from __future__ import annotations

import struct

import numpy as np
from scipy.linalg import solve_banded

from repro.core.partition import (
    interleave,
    lattice_shape,
    nonzero_offsets,
    subblock_shape,
    take_subblock,
)
from repro.core.predict import predict_block
from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.encoding.quantizer import DEFAULT_RADIUS, dequantize, quantize
from repro.util.sections import pack_sections, unpack_sections
from repro.util.validation import (
    as_float_array,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)

_MAGIC = b"MGDr"
_VERSION = 1
_HEADER = struct.Struct("<4sBBBBBdI")
# magic, version, dtype, ndim, levels, correction, eb, radius
_CORR_DAMP = 0.5  # damping of the projection correction


def default_levels(shape: tuple[int, ...]) -> int:
    """Decompose while every axis stays >= 4 points (max 6 levels)."""
    levels = 0
    dims = list(shape)
    while min(dims) >= 4 and levels < 6:
        dims = [-(-n // 2) for n in dims]
        levels += 1
    return max(1, levels)


def _mass_solve(arr: np.ndarray) -> np.ndarray:
    """Solve the tensor mass system M x = arr, axis by axis.

    M per axis is the 1D hat-function mass matrix tridiag(1/6, 2/3, 1/6)
    with lumped boundary rows (diag 5/6) so every row sums to 1 —
    constants are fixed points and the correction cannot blow up at
    domain edges.  Symmetric and diagonally dominant, so the solve is
    stable; this is the expensive multigrid ingredient MGARD-X pays for
    on every level.
    """
    out = arr.astype(np.float64, copy=True)
    for axis in range(arr.ndim):
        n = arr.shape[axis]
        if n < 2:
            continue
        ab = np.zeros((3, n))
        ab[0, 1:] = 1.0 / 6.0
        ab[1, :] = 2.0 / 3.0
        ab[1, 0] = ab[1, -1] = 5.0 / 6.0
        ab[2, :-1] = 1.0 / 6.0
        moved = np.moveaxis(out, axis, 0).reshape(n, -1)
        solved = solve_banded((1, 1), ab, moved)
        out = np.moveaxis(
            solved.reshape(np.moveaxis(out, axis, 0).shape), 0, axis
        )
    return out


def _interp_adjoint(
    details: dict[tuple[int, ...], np.ndarray], cshape: tuple[int, ...]
) -> np.ndarray:
    """Scatter detail residuals onto coarse nodes with the transposed
    multilinear weights (each detail point feeds its 2**j corner
    neighbors with weight 0.5**j)."""
    contrib = np.zeros(cshape, dtype=np.float64)
    for eps, d in details.items():
        if d.size == 0:
            continue
        odd = [a for a, e in enumerate(eps) if e]
        j = len(odd)
        w = 0.5**j
        import itertools

        for delta in itertools.product((0, 1), repeat=j):
            dst, src = [], []
            valid = True
            for a in range(len(cshape)):
                ts_a = d.shape[a]
                if a in odd:
                    dd = delta[odd.index(a)]
                    hi = min(ts_a, cshape[a] - dd)
                    if hi <= 0:
                        valid = False
                        break
                    dst.append(slice(dd, dd + hi))
                    src.append(slice(0, hi))
                else:
                    dst.append(slice(0, ts_a))
                    src.append(slice(0, ts_a))
            if valid:
                contrib[tuple(dst)] += w * d[tuple(src)].astype(np.float64)
    return contrib


def _correction(
    details: dict[tuple[int, ...], np.ndarray], cshape: tuple[int, ...]
) -> np.ndarray:
    return _CORR_DAMP * _mass_solve(_interp_adjoint(details, cshape))


def _level_eb(eb: float, level: int, levels: int) -> float:
    """Geometric budget: finest detail level gets eb/2, next eb/4, ..."""
    return eb / 2.0 ** (levels - level + 1)


def mgard_compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    levels: int | None = None,
    correction: bool = True,
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
) -> bytes:
    """Compress with strict absolute/relative L-infinity bound ``eb``."""
    return _mgard_compress_impl(
        data, eb, eb_mode, levels, correction, radius, zlib_level, False
    )[0]


def mgard_compress_with_recon(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    levels: int | None = None,
    correction: bool = True,
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
) -> tuple[bytes, np.ndarray]:
    """:func:`mgard_compress` plus the decoder's exact reconstruction.

    The encoder already holds every dequantized detail block (it needs
    them for the projection correction) and the root lattice it stores
    raw, so the decoder's output is obtained by replaying the
    recomposition loop on those tracked values — the same arithmetic
    :func:`mgard_decompress` runs, minus all entropy decoding.
    """
    blob, recon = _mgard_compress_impl(
        data, eb, eb_mode, levels, correction, radius, zlib_level, True
    )
    return blob, recon


def _mgard_compress_impl(
    data: np.ndarray,
    eb: float,
    eb_mode: str,
    levels: int | None,
    correction: bool,
    radius: int,
    zlib_level: int,
    want_recon: bool,
) -> tuple[bytes, np.ndarray | None]:
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    L = levels if levels is not None else default_levels(data.shape)
    if L < 1:
        raise ValueError("levels must be >= 1")
    offsets = nonzero_offsets(data.ndim)

    current = data.astype(np.float64)
    codes_parts: list[np.ndarray] = []
    out_counts: list[int] = []
    out_pos: list[np.ndarray] = []
    out_val: list[np.ndarray] = []
    #: level -> its dequantized detail blocks, kept for the encoder-side
    #: recomposition when the caller wants the reconstruction
    details_by_level: dict[int, dict[tuple[int, ...], np.ndarray]] = {}
    # fine -> coarse; details of level l quantized at the level budget
    for level in range(L, 0, -1):
        coarse = take_subblock(current, (0,) * data.ndim)
        ebl = _level_eb(abs_eb, level, L)
        details_hat: dict[tuple[int, ...], np.ndarray] = {}
        for eps in offsets:
            ts = subblock_shape(current.shape, eps)
            vals = take_subblock(current, eps)
            if vals.size == 0:
                details_hat[eps] = np.zeros(ts)
                codes_parts.append(np.zeros(0, dtype=np.uint32))
                out_counts.append(0)
                out_pos.append(np.zeros(0, dtype=np.uint32))
                out_val.append(np.zeros(0, dtype=np.float64))
                continue
            pred = predict_block(coarse, eps, ts, "linear")
            qb = quantize(vals - pred, np.zeros_like(pred), ebl, radius)
            codes_parts.append(qb.codes)
            out_counts.append(qb.outlier_pos.size)
            out_pos.append(qb.outlier_pos.astype(np.uint32))
            out_val.append(qb.outlier_val)
            details_hat[eps] = qb.recon.reshape(ts)
        if correction:
            coarse = coarse + _correction(details_hat, coarse.shape)
        if want_recon:
            details_by_level[level] = details_hat
        current = coarse

    codes = np.concatenate(codes_parts) if codes_parts else np.zeros(0, np.uint32)
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        dtype_code(data.dtype),
        data.ndim,
        L,
        int(correction),
        abs_eb,
        radius,
    ) + struct.pack(f"<{data.ndim}Q", *data.shape)
    sections = [
        header,
        compress_bytes(huffman_encode(codes), zlib_level),
        compress_bytes(
            np.asarray(out_counts, dtype=np.uint32).tobytes()
            + (np.concatenate(out_pos).tobytes() if out_pos else b"")
            + (np.concatenate(out_val).tobytes() if out_val else b""),
            zlib_level,
        ),
        compress_bytes(current.tobytes(), max(zlib_level, 1)),  # root, f64
    ]
    blob = pack_sections(sections)
    if not want_recon:
        return blob, None
    # replay the decoder's coarse -> fine recomposition on the tracked
    # dequantized details and the stored root: bit-identical inputs
    # through identical operations, so the result *is* the decoder's
    # output (stz_decompress equivalence tests pin this per backend)
    lat_shapes = [tuple(data.shape)]
    for _ in range(L):
        lat_shapes.append(lattice_shape(lat_shapes[-1], 2))
    rec = current  # the raw-stored root round-trips exactly (f64 bytes)
    for lvl in range(1, L + 1):
        fine_shape = lat_shapes[L - lvl]
        details_hat = details_by_level[lvl]
        if correction:
            rec = rec - _correction(details_hat, rec.shape)
        blocks = {}
        for eps in offsets:
            ts = subblock_shape(fine_shape, eps)
            if not all(ts):
                blocks[eps] = np.zeros(ts)
                continue
            pred = predict_block(rec, eps, ts, "linear")
            blocks[eps] = pred + details_hat[eps]
        rec = interleave(rec, blocks, fine_shape)
    return blob, np.ascontiguousarray(rec.astype(data.dtype))


def mgard_decompress(
    blob: bytes | memoryview, level: int | None = None
) -> np.ndarray:
    """Recompose; ``level=k`` stops early and returns the coarse lattice
    of stride ``2**(levels-k)`` (progressive decompression)."""
    sections = unpack_sections(blob)
    header = bytes(sections[0])
    magic, version, dt, ndim, L, correction, abs_eb, radius = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise ValueError("not an MGARD-like container")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    shape = struct.unpack(f"<{ndim}Q", header[_HEADER.size :])
    dtype = dtype_from_code(dt)
    if level is not None and not (1 <= level <= L + 1):
        raise ValueError(f"level must be in [1, {L + 1}] (1 = root lattice)")
    refinements = L if level is None else level - 1

    codes = huffman_decode(decompress_bytes(sections[1]))
    offsets = nonzero_offsets(ndim)
    # reproduce the exact batch structure of compression
    lat_shapes = [tuple(shape)]
    for _ in range(L):
        lat_shapes.append(lattice_shape(lat_shapes[-1], 2))
    out_blob = decompress_bytes(sections[2])
    nb = L * len(offsets)
    counts = np.frombuffer(out_blob[: 4 * nb], dtype=np.uint32)
    total_out = int(counts.sum())
    pos_all = np.frombuffer(
        out_blob[4 * nb : 4 * nb + 4 * total_out], dtype=np.uint32
    )
    val_all = np.frombuffer(out_blob[4 * nb + 4 * total_out :])

    # pre-split code/outlier runs in compression order (fine -> coarse)
    runs = []
    c_off = o_off = 0
    i = 0
    for lvl in range(L, 0, -1):
        fine_shape = lat_shapes[L - lvl]
        for eps in offsets:
            ts = subblock_shape(fine_shape, eps)
            size = int(np.prod(ts)) if all(ts) else 0
            n_out = int(counts[i])
            runs.append(
                (
                    lvl,
                    eps,
                    ts,
                    codes[c_off : c_off + size],
                    pos_all[o_off : o_off + n_out].astype(np.int64),
                    val_all[o_off : o_off + n_out],
                )
            )
            c_off += size
            o_off += n_out
            i += 1

    current = (
        np.frombuffer(decompress_bytes(sections[3]), dtype=np.float64)
        .reshape(lat_shapes[L])
        .copy()
    )
    # coarse -> fine
    for lvl in range(1, refinements + 1):
        fine_shape = lat_shapes[L - lvl]
        lvl_runs = [r for r in runs if r[0] == lvl]
        ebl = _level_eb(abs_eb, lvl, L)
        details_hat: dict[tuple[int, ...], np.ndarray] = {}
        for _, eps, ts, bcodes, pos, val in lvl_runs:
            if bcodes.size == 0:
                details_hat[eps] = np.zeros(ts)
                continue
            d = dequantize(
                bcodes, np.zeros(ts, dtype=np.float64), ebl, pos, val, radius
            )
            details_hat[eps] = d.reshape(ts)
        if correction:
            current = current - _correction(details_hat, current.shape)
        blocks = {}
        for eps in offsets:
            ts = subblock_shape(fine_shape, eps)
            if not all(ts):
                blocks[eps] = np.zeros(ts)
                continue
            pred = predict_block(current, eps, ts, "linear")
            blocks[eps] = pred + details_hat[eps]
        current = interleave(current, blocks, fine_shape)
    return np.ascontiguousarray(current.astype(dtype))


class MGARDCompressor:
    """Object API with Table 1 capability flags."""

    name = "MGARD-X"
    supports_progressive = True
    supports_random_access = False

    def __init__(self, eb: float, eb_mode: str = "abs"):
        self.eb = eb
        self.eb_mode = eb_mode

    def compress(self, data: np.ndarray) -> bytes:
        return mgard_compress(data, self.eb, self.eb_mode)

    def decompress(self, blob: bytes) -> np.ndarray:
        return mgard_decompress(blob)
